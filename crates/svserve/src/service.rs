//! The repair service: submit/await frontend over a sharded worker pool.
//!
//! This is the *sampling* half of the two-pool serving architecture; its verdict
//! twin, built from the same recipe, lives in [`crate::verify`].
//!
//! Two frontends share one engine (`ServiceCore` + `worker_loop`):
//!
//! * [`RepairService`] owns its model (`Arc<M>`) and keeps a persistent pool until
//!   [`RepairService::shutdown`] or drop — the long-running daemon shape;
//! * [`serve_scoped`] borrows the model for the duration of a closure using scoped
//!   threads — the shape `assertsolver::evaluate_model` uses, since evaluation only
//!   holds `&M`.
//!
//! ## Determinism
//!
//! The response set for a request is a pure function of the request content and the
//! service seed: the sampler seed is derived from the content hash (never from
//! arrival order or worker identity), and requests route to shards by the same hash.
//! Running the same workload with 1 or 8 workers therefore yields byte-identical
//! responses — only the wall-clock changes.

use crate::cache::{case_key, CaseKey, LruCache};
use crate::journal::{JournalEvent, TracerHandle};
use crate::metrics::{MetricsRecorder, ServiceMetrics};
use crate::persist::{self, PersistSpec, SnapshotLoad};
use crate::queue::{ServiceClosed, Shard, SubmitError};
use crate::sync::lock_recover;
use crate::telemetry::{
    Metric, MetricClass, RegistrySnapshot, TelemetryHandle, TelemetryWindows, WindowSnapshot,
};
use crate::ticket::TicketState;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};
use std::time::{Duration, Instant};
use svmodel::{CaseInput, RepairModel, Response};

/// Service tuning parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads (and queue/cache shards). Clamped to at least 1.
    pub workers: usize,
    /// Bounded depth of each shard queue; submitters block past this (backpressure).
    pub shard_capacity: usize,
    /// Maximum jobs a worker drains per wake-up (micro-batching).
    pub max_batch: usize,
    /// Total response-cache entries across all shards.
    pub cache_capacity: usize,
    /// Service seed mixed into every per-case sampler seed.
    pub seed: u64,
    /// Admission control: maximum requests in flight (admitted but not yet
    /// completed) before `submit` sheds new work with [`SubmitError::Busy`]
    /// instead of queueing it.  `0` = unbounded.  Shed requests are counted in
    /// [`ServiceMetrics::shed_busy`]; the rejection is deterministic — it
    /// depends only on the exact in-flight count, never on timing heuristics.
    pub max_in_flight: usize,
    /// On-disk snapshot of the response cache: preloaded at start, written by
    /// [`RepairService::flush`] / shutdown / the end of [`serve_scoped`].  `None`
    /// keeps the cache purely in-memory.  See [`crate::persist`] for the format
    /// and invalidation rules.
    pub persist: Option<PersistSpec>,
    /// Journal tracer admit/shed and cache/panic diagnostics are emitted to;
    /// off by default, in which case each instrumented site costs one branch.
    pub tracer: TracerHandle,
    /// Telemetry registry the pool's latency histograms
    /// (`service.repair.queue_wait` / `.cache_lookup` / `.solve`) record into;
    /// off by default, in which case each instrumented site costs one branch.
    pub telemetry: TelemetryHandle,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            shard_capacity: 64,
            max_batch: 8,
            cache_capacity: 1024,
            seed: 0x0005_E127_AB1E,
            max_in_flight: 0,
            persist: None,
            tracer: TracerHandle::off(),
            telemetry: TelemetryHandle::off(),
        }
    }
}

impl ServiceConfig {
    /// Returns the config with the worker count replaced.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the config with the service seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with response-cache persistence enabled.
    pub fn with_persist(mut self, persist: PersistSpec) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Returns the config with the in-flight admission limit replaced
    /// (`0` = unbounded).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Returns the config with the journal tracer replaced.
    pub fn with_tracer(mut self, tracer: TracerHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Returns the config with the telemetry handle replaced.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.shard_capacity = self.shard_capacity.max(1);
        self.max_batch = self.max_batch.max(1);
        self.cache_capacity = self.cache_capacity.max(self.workers);
        self
    }
}

/// One repair request: the case plus the sampling protocol.
///
/// Serializable so it can cross a process boundary verbatim ([`crate::wire`]);
/// the content-addressed key derives from the same fields on both sides.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RepairRequest {
    /// Model input (spec, buggy source, failure log).
    pub case: CaseInput,
    /// Number of samples to draw.
    pub samples: usize,
    /// Sampling temperature.
    pub temperature: f64,
}

impl RepairRequest {
    /// Convenience constructor.
    pub fn new(case: CaseInput, samples: usize, temperature: f64) -> Self {
        Self {
            case,
            samples,
            temperature,
        }
    }

    /// The request's content-addressed cache key.
    pub fn key(&self) -> CaseKey {
        case_key(&self.case, self.samples, self.temperature)
    }
}

/// A served request: the model's answers plus provenance and timing.
///
/// Responses are shared (`Arc`) with the service cache, so a cache hit costs one
/// reference bump rather than a deep clone of every sampled string.  An empty
/// response set with [`ServiceMetrics::solve_panics`] > 0 indicates the model
/// panicked on this case (the service absorbs the panic instead of stranding the
/// ticket).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The sampled responses, in sampling order.
    pub responses: Arc<Vec<Response>>,
    /// Whether the answer came from the response cache.
    pub from_cache: bool,
    /// Index of the worker (= shard) that served the request.
    pub worker: usize,
    /// Time the job spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Cache lookup plus (on a miss) model invocation time.
    pub service_time: Duration,
}

/// Await-handle for a submitted request.
pub struct RepairTicket {
    state: Arc<TicketState<RepairOutcome>>,
}

impl RepairTicket {
    /// Blocks until the request has been served.
    pub fn wait(self) -> RepairOutcome {
        self.state.wait()
    }

    /// Non-blocking poll; returns the outcome once served.
    pub fn try_take(&self) -> Option<RepairOutcome> {
        self.state.try_take()
    }
}

impl Future for RepairTicket {
    type Output = RepairOutcome;

    /// Awaits the outcome without holding a thread: the worker's `fulfill`
    /// wakes the registered task.
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<RepairOutcome> {
        self.state.poll_take(cx.waker())
    }
}

/// Future returned by the async submit paths: resolves to the request's
/// [`RepairTicket`] once the target shard has accepted the job, parking on a
/// waker (never a thread) while the shard is at capacity.
///
/// Dropping the future before it resolves abandons the submission and rolls
/// back the admission slot it reserved, so a cancelled session cannot leak
/// in-flight budget.
pub struct SubmitFuture<'a> {
    core: &'a ServiceCore,
    job: Option<Job>,
    shard: usize,
    state: Arc<TicketState<RepairOutcome>>,
}

impl Future for SubmitFuture<'_> {
    type Output = Result<RepairTicket, ServiceClosed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match this.core.shards[this.shard].poll_push(&mut this.job, &this.core.closed, cx.waker()) {
            Poll::Ready(Ok(depth)) => {
                this.core.metrics.record_submit(depth);
                Poll::Ready(Ok(RepairTicket {
                    state: Arc::clone(&this.state),
                }))
            }
            Poll::Ready(Err(closed)) => {
                // The job never reached a queue: hand the admission slot back.
                this.core.metrics.release_in_flight();
                Poll::Ready(Err(closed))
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

impl Drop for SubmitFuture<'_> {
    fn drop(&mut self) {
        // Still holding the job means it was never enqueued: release the
        // admission slot reserved at `begin_submit`.  (Once enqueued, the
        // worker releases it when the job completes.)
        if self.job.is_some() {
            self.core.metrics.release_in_flight();
        }
    }
}

struct Job {
    request: RepairRequest,
    key: CaseKey,
    seed: u64,
    enqueued_at: Instant,
    ticket: Arc<TicketState<RepairOutcome>>,
}

/// Shared engine state: shard queues, shard caches, metrics, lifecycle flag.
pub(crate) struct ServiceCore {
    config: ServiceConfig,
    shards: Vec<Shard<Job>>,
    caches: Vec<Mutex<LruCache>>,
    metrics: MetricsRecorder,
    timers: PoolTimers,
    /// Time-windowed rates/latencies (the `StatsWindow` exchange); installed
    /// with telemetry, `None` otherwise — the hot path pays one branch.
    windows: Option<Arc<TelemetryWindows>>,
    closed: AtomicBool,
    /// Generation of the snapshot this core preloaded (0 when cold); the next
    /// flush writes generation + 1 and ages entries against it.
    snapshot_generation: AtomicU64,
}

/// Latency histograms resolved once at pool start; `None` (telemetry off)
/// costs one branch per job at each record site.
struct PoolTimers {
    queue_wait: Option<Arc<Metric>>,
    cache_lookup: Option<Arc<Metric>>,
    solve: Option<Arc<Metric>>,
}

impl PoolTimers {
    fn new(telemetry: &TelemetryHandle) -> Self {
        let vol = MetricClass::Volatile;
        Self {
            queue_wait: telemetry.histogram("service.repair.queue_wait", vol),
            cache_lookup: telemetry.histogram("service.repair.cache_lookup", vol),
            solve: telemetry.histogram("service.repair.solve", vol),
        }
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ServiceCore {
    pub(crate) fn new(config: ServiceConfig) -> Self {
        let config = config.normalized();
        let per_shard_cache = config.cache_capacity.div_ceil(config.workers);
        let core = Self {
            shards: (0..config.workers)
                .map(|_| Shard::new(config.shard_capacity))
                .collect(),
            caches: (0..config.workers)
                .map(|_| Mutex::new(LruCache::new(per_shard_cache)))
                .collect(),
            metrics: MetricsRecorder::new(),
            timers: PoolTimers::new(&config.telemetry),
            windows: config
                .telemetry
                .is_on()
                .then(|| Arc::new(TelemetryWindows::from_env())),
            closed: AtomicBool::new(false),
            snapshot_generation: AtomicU64::new(0),
            config,
        };
        core.preload_snapshot();
        core
    }

    /// The normalized config the core runs under (route frontends need the
    /// worker count to spawn threads).
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The persistence spec with the service seed folded into the fingerprint.
    ///
    /// Cached responses depend on the sampler seed (derived from the service seed
    /// plus the content hash), but [`CaseKey`] does not cover it — so the seed must
    /// be part of the snapshot identity or a warm start under a different seed
    /// would silently replay wrong responses.  Folding it here makes the invariant
    /// unbreakable instead of a caller convention.
    fn persist_spec(&self) -> Option<PersistSpec> {
        self.config.persist.as_ref().map(|spec| {
            let mut fingerprint = spec.fingerprint.clone();
            fingerprint.extend_from_slice(&self.config.seed.to_le_bytes());
            PersistSpec {
                fingerprint,
                ..spec.clone()
            }
        })
    }

    /// Warm start: preloads the persisted response snapshot, if one is configured
    /// and valid.  A missing file is the normal first run; a corrupt or mismatched
    /// one is counted in the metrics and the service starts cold — never an error.
    fn preload_snapshot(&self) {
        let Some(spec) = self.persist_spec() else {
            return;
        };
        match persist::load_response_snapshot(&spec) {
            SnapshotLoad::Loaded(loaded) => {
                let count = loaded.entries.len();
                self.snapshot_generation
                    .store(loaded.generation, Ordering::Relaxed);
                for (key, responses, gen) in loaded.entries {
                    lock_recover(&self.caches[self.shard_for(key)])
                        .preload_aged(key, responses, gen);
                }
                self.metrics.record_snapshot_load(count);
            }
            SnapshotLoad::Missing => {}
            SnapshotLoad::Rejected(_) => self.metrics.record_snapshot_reject(),
        }
    }

    /// Spills every cached response set to the configured snapshot path
    /// (atomically); `Ok(0)` when persistence is not configured.
    ///
    /// An **empty** cache is never written: a service that loaded nothing (e.g. a
    /// reconfigured run whose preload was rejected) and computed nothing must not
    /// replace a previously valuable snapshot with an empty file.
    pub(crate) fn flush(&self) -> std::io::Result<usize> {
        let Some(spec) = self.persist_spec() else {
            return Ok(0);
        };
        let mut entries = Vec::new();
        for cache in &self.caches {
            entries.extend(lock_recover(cache).export_aged());
        }
        if entries.is_empty() {
            return Ok(0);
        }
        // Age the entries against the preloaded generation: touched entries are
        // re-stamped current, idle ones keep their old stamp and fall off once
        // they are `compact_after` runs behind (0 = keep forever).  A snapshot
        // emptied *by compaction* is still written (the empty file records the
        // drop and advances the generation); only a cache with nothing in it —
        // e.g. an idle pool whose preload was rejected — skips the write, so
        // it cannot clobber a valuable snapshot (the early return above).
        let loaded_generation = self.snapshot_generation.load(Ordering::Relaxed);
        let next_generation = loaded_generation + 1;
        let (entries, compacted) = persist::age_entries(
            entries,
            loaded_generation,
            next_generation,
            spec.compact_after,
        );
        match persist::save_response_snapshot_aged(&spec, next_generation, entries) {
            Ok(count) => {
                self.metrics.record_snapshot_save(count);
                // Counted only once the write landed: a failed save has not
                // actually dropped anything from disk.
                if compacted > 0 {
                    self.metrics.record_snapshot_compaction(compacted);
                }
                Ok(count)
            }
            Err(err) => {
                // The automatic flush paths (shutdown/drop/scoped exit) discard
                // this error; the counter is the surviving signal.
                self.metrics.record_snapshot_save_failure();
                Err(err)
            }
        }
    }

    /// Derives the sampler seed for a request: a pure function of service seed and
    /// content hash, never of arrival order or worker identity.
    fn derive_seed(&self, key: CaseKey) -> u64 {
        splitmix64(self.config.seed ^ key.fold64())
    }

    fn shard_for(&self, key: CaseKey) -> usize {
        (key.fold64() % self.shards.len() as u64) as usize
    }

    /// Admission + job construction, shared by the blocking and async submit
    /// paths.  On success the in-flight slot has been reserved; it is released
    /// by the worker when the job completes, or rolled back by the caller if
    /// the job never reaches a queue.  `enforce_admission = false` bypasses the
    /// `max_in_flight` limit (used by the router's internal escalation legs,
    /// which must not be shed halfway up a ladder) but still counts the slot.
    fn begin_submit(
        &self,
        request: RepairRequest,
        enforce_admission: bool,
    ) -> Result<(Job, usize, Arc<TicketState<RepairOutcome>>), SubmitError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SubmitError::Closed);
        }
        let limit = if enforce_admission {
            self.config.max_in_flight
        } else {
            0
        };
        if !self.metrics.try_admit(limit) {
            self.metrics.record_shed();
            if let Some(windows) = &self.windows {
                windows.record_shed();
            }
            if self.config.tracer.is_on() {
                // The key is only needed for the diagnostic; don't hash the
                // request content on the shed fast-path while journaling is off.
                self.metrics.record_journal_event();
                self.config.tracer.diagnostic(
                    request.key().fold64(),
                    JournalEvent::Shed {
                        pool: "repair".to_string(),
                    },
                );
            }
            return Err(SubmitError::Busy);
        }
        let key = request.key();
        if self.config.tracer.is_on() {
            self.metrics.record_journal_event();
            self.config.tracer.diagnostic(
                key.fold64(),
                JournalEvent::Admit {
                    pool: "repair".to_string(),
                },
            );
        }
        if let Some(windows) = &self.windows {
            windows.record_submit();
        }
        let state = TicketState::new();
        let job = Job {
            seed: self.derive_seed(key),
            enqueued_at: Instant::now(),
            ticket: Arc::clone(&state),
            request,
            key,
        };
        let shard = self.shard_for(key);
        Ok((job, shard, state))
    }

    pub(crate) fn submit(&self, request: RepairRequest) -> Result<RepairTicket, SubmitError> {
        self.submit_inner(request, true)
    }

    pub(crate) fn submit_inner(
        &self,
        request: RepairRequest,
        enforce_admission: bool,
    ) -> Result<RepairTicket, SubmitError> {
        let (job, shard, state) = self.begin_submit(request, enforce_admission)?;
        match self.shards[shard].push_blocking(job, &self.closed) {
            Ok(depth) => {
                self.metrics.record_submit(depth);
                Ok(RepairTicket { state })
            }
            Err(closed) => {
                self.metrics.release_in_flight();
                Err(closed.into())
            }
        }
    }

    /// Non-blocking submit: admission and shutdown are checked eagerly (so a
    /// deterministic [`SubmitError::Busy`] surfaces before any awaiting), and
    /// the returned future parks on the shard's submit waker — instead of an OS
    /// thread — while the queue is at capacity.
    pub(crate) fn submit_async(
        &self,
        request: RepairRequest,
    ) -> Result<SubmitFuture<'_>, SubmitError> {
        let (job, shard, state) = self.begin_submit(request, true)?;
        Ok(SubmitFuture {
            core: self,
            job: Some(job),
            shard,
            state,
        })
    }

    fn queue_depth(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    fn cache_entries(&self) -> usize {
        self.caches
            .iter()
            .map(|cache| lock_recover(cache).len())
            .sum()
    }

    pub(crate) fn snapshot(&self) -> ServiceMetrics {
        self.metrics.snapshot(
            self.config.workers,
            self.queue_depth(),
            self.cache_entries(),
        )
    }

    /// The introspection snapshot served over the wire (`Stats` exchange):
    /// the exported [`ServiceMetrics`] under the `service.` prefix, merged
    /// over the live telemetry registry (latency histograms, wire frame
    /// sizes) when one is installed.  Works with telemetry off — the
    /// counters and gauges come from the always-on metrics recorder.
    pub(crate) fn stats_snapshot(&self) -> RegistrySnapshot {
        let mut out = self.config.telemetry.snapshot();
        self.snapshot().export("service", &mut out);
        out
    }

    /// The time-windowed snapshot served over the wire (`StatsWindow`
    /// exchange).  With telemetry off the windows are not maintained and
    /// this returns an empty default — a counted degradation, never an
    /// error, so `svtop` can poll a mixed fleet.
    pub(crate) fn stats_window(&self) -> WindowSnapshot {
        match &self.windows {
            Some(windows) => windows.snapshot(self.snapshot().in_flight_sessions as u64),
            None => WindowSnapshot::default(),
        }
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.notify_all();
        }
    }
}

/// Closes the core when dropped, so scoped workers exit even if the body panics.
struct CloseGuard<'a>(&'a ServiceCore);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

pub(crate) fn worker_loop<M: RepairModel + ?Sized>(
    core: &ServiceCore,
    model: &M,
    shard_idx: usize,
) {
    loop {
        let batch = core.shards[shard_idx].drain_batch(core.config.max_batch, &core.closed);
        if batch.is_empty() {
            // Closed and drained.
            return;
        }
        core.metrics.record_batch();
        for job in batch {
            let queue_wait = job.enqueued_at.elapsed();
            let service_start = Instant::now();
            let cached = lock_recover(&core.caches[shard_idx]).get_tagged(job.key);
            let cache_lookup = service_start.elapsed();
            if core.config.tracer.is_on() {
                core.metrics.record_journal_event();
                core.config.tracer.diagnostic(
                    job.key.fold64(),
                    JournalEvent::Cache {
                        pool: "repair".to_string(),
                        hit: cached.is_some(),
                        warm: matches!(cached, Some((_, true))),
                    },
                );
            }
            let (responses, solve_time) = match cached {
                Some((responses, warm)) => {
                    if warm {
                        core.metrics.record_warm_hit();
                    }
                    (responses, None)
                }
                None => {
                    let solve_start = Instant::now();
                    // A panicking model must not take the worker down: an unwinding
                    // worker would strand every ticket in its shard (waiters block
                    // forever and scoped pools never join).  Catch the panic, serve
                    // an empty response set, and count it in the metrics.
                    let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        model.solve(
                            &job.request.case,
                            job.request.samples,
                            job.request.temperature,
                            job.seed,
                        )
                    }));
                    let elapsed = solve_start.elapsed();
                    match solved {
                        Ok(responses) => {
                            let responses = Arc::new(responses);
                            lock_recover(&core.caches[shard_idx])
                                .insert(job.key, Arc::clone(&responses));
                            (responses, Some(elapsed))
                        }
                        Err(_) => {
                            // Not cached: a retry should reach the model again.
                            core.metrics.record_solve_panic();
                            if core.config.tracer.is_on() {
                                core.metrics.record_journal_event();
                                core.config.tracer.diagnostic(
                                    job.key.fold64(),
                                    JournalEvent::Panic {
                                        pool: "repair".to_string(),
                                    },
                                );
                            }
                            (Arc::new(Vec::new()), Some(elapsed))
                        }
                    }
                }
            };
            core.metrics
                .record_job(queue_wait, cache_lookup, solve_time);
            if let Some(metric) = &core.timers.queue_wait {
                metric.observe_duration(queue_wait);
            }
            if let Some(metric) = &core.timers.cache_lookup {
                metric.observe_duration(cache_lookup);
            }
            if let (Some(metric), Some(solve)) = (&core.timers.solve, solve_time) {
                metric.observe_duration(solve);
            }
            let service_time = service_start.elapsed();
            if let Some(windows) = &core.windows {
                windows.record_complete(service_time.as_nanos() as u64);
            }
            job.ticket.fulfill(RepairOutcome {
                responses,
                from_cache: solve_time.is_none(),
                worker: shard_idx,
                queue_wait,
                service_time,
            });
        }
    }
}

/// A persistent repair service owning its model and worker pool.
pub struct RepairService<M: RepairModel + Send + Sync + 'static> {
    core: Arc<ServiceCore>,
    handles: Vec<std::thread::JoinHandle<()>>,
    _model: Arc<M>,
}

impl<M: RepairModel + Send + Sync + 'static> RepairService<M> {
    /// Starts the worker pool.
    pub fn start(model: Arc<M>, config: ServiceConfig) -> Self {
        let core = Arc::new(ServiceCore::new(config));
        let handles = (0..core.config.workers)
            .map(|shard_idx| {
                let core = Arc::clone(&core);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("svserve-worker-{shard_idx}"))
                    .spawn(move || worker_loop(&core, &*model, shard_idx))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            core,
            handles,
            _model: model,
        }
    }

    /// Submits one request; blocks only when the target shard is at capacity.
    /// Sheds with [`SubmitError::Busy`] when [`ServiceConfig::max_in_flight`]
    /// is reached.
    pub fn submit(&self, request: RepairRequest) -> Result<RepairTicket, SubmitError> {
        self.core.submit(request)
    }

    /// Non-blocking submit for async sessions: admission is checked eagerly,
    /// and the returned future parks on a waker (not a thread) while the
    /// target shard is at capacity.  Await it, then await the ticket.
    pub fn submit_async(&self, request: RepairRequest) -> Result<SubmitFuture<'_>, SubmitError> {
        self.core.submit_async(request)
    }

    /// Submits a whole workload and waits for every answer, preserving input order.
    pub fn solve_all(&self, requests: Vec<RepairRequest>) -> Vec<RepairOutcome> {
        solve_all_on(&self.core, requests)
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        self.core.snapshot()
    }

    /// The introspection snapshot the wire layer serves for a
    /// [`crate::wire::Frame::Stats`] request: exported service metrics merged
    /// over the live telemetry registry (when one is installed).
    pub fn stats_snapshot(&self) -> RegistrySnapshot {
        self.core.stats_snapshot()
    }

    /// The time-windowed snapshot the wire layer serves for a
    /// [`crate::wire::Frame::StatsWindow`] request; empty when telemetry
    /// is off.
    pub fn stats_window(&self) -> WindowSnapshot {
        self.core.stats_window()
    }

    /// Writes the current response cache to the configured snapshot path
    /// (atomically), returning the number of entries written; `Ok(0)` when
    /// persistence is not configured.  Also runs automatically on shutdown/drop.
    pub fn flush(&self) -> std::io::Result<usize> {
        self.core.flush()
    }

    /// Stops accepting work, drains the queues, joins the workers and flushes the
    /// response-cache snapshot.
    pub fn shutdown(mut self) -> ServiceMetrics {
        self.core.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let _ = self.core.flush();
        self.core.snapshot()
    }
}

impl<M: RepairModel + Send + Sync + 'static> Drop for RepairService<M> {
    fn drop(&mut self) {
        self.core.close();
        let had_workers = !self.handles.is_empty();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // `shutdown` already flushed (and emptied `handles`); only flush here when
        // the service is dropped without an explicit shutdown.
        if had_workers {
            let _ = self.core.flush();
        }
    }
}

/// Borrowed-model service handle available inside [`serve_scoped`].
pub struct ScopedService<'a> {
    core: &'a ServiceCore,
}

impl ScopedService<'_> {
    /// Submits one request; blocks only when the target shard is at capacity.
    /// Sheds with [`SubmitError::Busy`] when [`ServiceConfig::max_in_flight`]
    /// is reached.
    pub fn submit(&self, request: RepairRequest) -> Result<RepairTicket, SubmitError> {
        self.core.submit(request)
    }

    /// Non-blocking submit for async sessions: admission is checked eagerly,
    /// and the returned future parks on a waker (not a thread) while the
    /// target shard is at capacity.  Await it, then await the ticket.
    pub fn submit_async(&self, request: RepairRequest) -> Result<SubmitFuture<'_>, SubmitError> {
        self.core.submit_async(request)
    }

    /// Submits a whole workload and waits for every answer, preserving input order.
    pub fn solve_all(&self, requests: Vec<RepairRequest>) -> Vec<RepairOutcome> {
        solve_all_on(self.core, requests)
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        self.core.snapshot()
    }

    /// The introspection snapshot the wire layer serves for a
    /// [`crate::wire::Frame::Stats`] request: exported service metrics merged
    /// over the live telemetry registry (when one is installed).
    pub fn stats_snapshot(&self) -> RegistrySnapshot {
        self.core.stats_snapshot()
    }

    /// The time-windowed snapshot the wire layer serves for a
    /// [`crate::wire::Frame::StatsWindow`] request; empty when telemetry
    /// is off.
    pub fn stats_window(&self) -> WindowSnapshot {
        self.core.stats_window()
    }
}

fn solve_all_on(core: &ServiceCore, requests: Vec<RepairRequest>) -> Vec<RepairOutcome> {
    // Submit everything first (backpressure throttles us while workers drain),
    // then await in input order.
    let tickets: Vec<RepairTicket> = requests
        .into_iter()
        .map(|request| core.submit(request).expect("service open during solve_all"))
        .collect();
    tickets.into_iter().map(RepairTicket::wait).collect()
}

/// Runs a worker pool over a *borrowed* model for the duration of `body`.
///
/// The pool is built on scoped threads, so `model` only needs `Sync` — no `Arc`, no
/// `'static`.  Workers drain outstanding jobs and exit when `body` returns (or
/// panics).  When [`ServiceConfig::persist`] is set, the snapshot is preloaded
/// before the workers start and flushed after they have all joined (so the flush
/// sees every response the pool computed); a panicking `body` skips the flush.
pub fn serve_scoped<M, F, R>(model: &M, config: ServiceConfig, body: F) -> R
where
    M: RepairModel + Sync + ?Sized,
    F: FnOnce(&ScopedService<'_>) -> R,
{
    let core = ServiceCore::new(config);
    let result = std::thread::scope(|scope| {
        let guard = CloseGuard(&core);
        for shard_idx in 0..core.config.workers {
            let core_ref = &core;
            scope.spawn(move || worker_loop(core_ref, model, shard_idx));
        }
        let service = ScopedService { core: &core };
        let result = body(&service);
        drop(guard); // close + wake workers so the scope can join
        result
    });
    let _ = core.flush();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Deterministic test model: echoes a line number derived from case + seed, and
    /// counts invocations so tests can prove cache hits skip the model.
    struct CountingModel {
        calls: AtomicUsize,
    }

    impl CountingModel {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl RepairModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }

        fn solve(
            &self,
            case: &CaseInput,
            samples: usize,
            _temperature: f64,
            seed: u64,
        ) -> Vec<Response> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            (0..samples)
                .map(|i| Response {
                    bug_line_number: (case.spec.len() as u32) + i as u32,
                    buggy_line: case.buggy_source.clone(),
                    fixed_line: format!("seed-{seed}-sample-{i}"),
                    cot: None,
                })
                .collect()
        }
    }

    fn request(tag: usize) -> RepairRequest {
        RepairRequest::new(
            CaseInput {
                spec: format!("spec {tag}"),
                buggy_source: format!("module m{tag}(); endmodule"),
                logs: format!("assertion a{tag} failed"),
            },
            4,
            0.2,
        )
    }

    #[test]
    fn owned_service_serves_and_shuts_down() {
        let model = Arc::new(CountingModel::new());
        let service =
            RepairService::start(Arc::clone(&model), ServiceConfig::default().with_workers(2));
        let outcomes = service.solve_all((0..20).map(request).collect());
        assert_eq!(outcomes.len(), 20);
        assert!(outcomes.iter().all(|o| o.responses.len() == 4));
        let metrics = service.shutdown();
        assert_eq!(metrics.completed, 20);
        assert_eq!(metrics.cache_misses, 20);
        assert_eq!(model.calls.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn repeated_submission_is_served_from_cache() {
        let model = Arc::new(CountingModel::new());
        let service =
            RepairService::start(Arc::clone(&model), ServiceConfig::default().with_workers(2));
        let first = service.submit(request(7)).unwrap().wait();
        let second = service.submit(request(7)).unwrap().wait();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.responses, second.responses);
        assert_eq!(
            model.calls.load(Ordering::SeqCst),
            1,
            "cache hit must not re-invoke the model"
        );
        let metrics = service.metrics();
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn results_are_identical_across_worker_counts_and_orders() {
        let workload: Vec<RepairRequest> = (0..40).map(request).collect();
        let mut reversed = workload.clone();
        reversed.reverse();

        let run = |requests: Vec<RepairRequest>, workers: usize| -> Vec<Arc<Vec<Response>>> {
            let model = CountingModel::new();
            serve_scoped(
                &model,
                ServiceConfig::default().with_workers(workers),
                |service| {
                    service
                        .solve_all(requests)
                        .into_iter()
                        .map(|o| o.responses)
                        .collect()
                },
            )
        };

        let one = run(workload.clone(), 1);
        let four = run(workload.clone(), 4);
        assert_eq!(one, four, "worker count must not change results");

        let mut reversed_results = run(reversed, 4);
        reversed_results.reverse();
        assert_eq!(
            one, reversed_results,
            "arrival order must not change results"
        );
    }

    #[test]
    fn scoped_service_reports_queue_and_batch_metrics() {
        let model = CountingModel::new();
        let metrics = serve_scoped(
            &model,
            ServiceConfig::default().with_workers(1).with_seed(9),
            |service| {
                let outcomes = service.solve_all((0..10).map(request).collect());
                assert!(outcomes.iter().all(|o| o.worker == 0));
                service.metrics()
            },
        );
        assert_eq!(metrics.workers, 1);
        assert_eq!(metrics.completed, 10);
        assert!(metrics.mean_batch_size >= 1.0);
        assert!(metrics.throughput_per_sec > 0.0);
    }

    #[test]
    fn a_panicking_model_does_not_strand_tickets() {
        struct PanickyModel;
        impl RepairModel for PanickyModel {
            fn name(&self) -> &str {
                "panicky"
            }
            fn solve(
                &self,
                case: &CaseInput,
                samples: usize,
                _temperature: f64,
                _seed: u64,
            ) -> Vec<Response> {
                if case.spec.contains("spec 3") {
                    panic!("malformed case");
                }
                vec![
                    Response {
                        bug_line_number: 1,
                        buggy_line: String::new(),
                        fixed_line: String::new(),
                        cot: None,
                    };
                    samples
                ]
            }
        }

        let metrics = serve_scoped(
            &PanickyModel,
            ServiceConfig::default().with_workers(2),
            |service| {
                let outcomes = service.solve_all((0..8).map(request).collect());
                assert_eq!(outcomes.len(), 8, "every ticket must be fulfilled");
                for (i, outcome) in outcomes.iter().enumerate() {
                    if i == 3 {
                        assert!(outcome.responses.is_empty());
                    } else {
                        assert_eq!(outcome.responses.len(), 4);
                    }
                }
                service.metrics()
            },
        );
        assert_eq!(metrics.solve_panics, 1);
        assert_eq!(metrics.completed, 8);
    }

    #[test]
    fn shard_routing_is_content_based() {
        let core = ServiceCore::new(ServiceConfig::default().with_workers(4));
        for tag in 0..32 {
            let key = request(tag).key();
            assert_eq!(core.shard_for(key), core.shard_for(key));
        }
        // Seeds derive from content, not order: same request, same seed.
        let key = request(3).key();
        assert_eq!(core.derive_seed(key), core.derive_seed(key));
        assert_ne!(core.derive_seed(key), core.derive_seed(request(4).key()));
    }
}
