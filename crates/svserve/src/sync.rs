//! Poison-recovering lock helpers.
//!
//! Every pool in this crate already absorbs panics at the boundary where user
//! code runs (`catch_unwind` around model solves, judge verdicts and task
//! polls), so a panic that slips through while a `Mutex` is held — a panicking
//! `Waker::wake`, a panicking `Drop` in a queued job — must not escalate into
//! cascading `PoisonError` panics in *unrelated* threads that merely touch the
//! same lock later.  None of the protected state carries cross-field
//! invariants that a mid-update panic could break (queues of owned jobs,
//! one-shot ticket slots, append-only journal buffers, ready lists), so
//! recovering the guard is strictly better than poisoning the whole pool.
//!
//! All internal lock sites go through these helpers instead of
//! `.lock().expect(..)`.

use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] that recovers the guard on poison instead of
/// propagating the panic to the waiting thread.
pub(crate) fn wait_timeout_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn poison<T: Send + 'static>(mutex: &Arc<Mutex<T>>) {
        let clone = Arc::clone(mutex);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(7u32));
        poison(&mutex);
        assert!(mutex.lock().is_err(), "the mutex really is poisoned");
        assert_eq!(*lock_recover(&mutex), 7);
        *lock_recover(&mutex) = 8;
        assert_eq!(*lock_recover(&mutex), 8);
    }

    #[test]
    fn wait_timeout_recover_survives_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(0u32));
        poison(&mutex);
        let condvar = Condvar::new();
        let guard = lock_recover(&mutex);
        let (guard, timeout) = wait_timeout_recover(&condvar, guard, Duration::from_millis(1));
        assert!(timeout.timed_out());
        assert_eq!(*guard, 0);
    }
}
