//! A minimal, dependency-free async runtime for the serving layer.
//!
//! The pools in this crate park one OS thread per waiting caller
//! (the ticket module's condvar `wait`), which caps concurrent repair sessions at
//! the thread budget.  This module is the hand-rolled replacement — no tokio, per
//! the vendored-only policy: a small executor whose **driver threads** poll
//! [`Waker`]-scheduled tasks from one shared ready queue, so thousands of
//! in-flight sessions multiplex over a handful of drivers.  [`crate::session`]
//! builds the repair-session state machine on top of it.
//!
//! ## Shape
//!
//! * [`Runtime::new`] spawns N driver threads ([`DRIVERS_ENV`] overrides the
//!   default); [`Runtime::spawn`] schedules a `'static` future and returns a
//!   [`TaskHandle`] to join, poll or cancel it.
//! * [`Runtime::scope`] is the borrowed-data variant (mirroring
//!   `std::thread::scope`): futures spawned inside the scope may borrow from the
//!   enclosing stack frame, and the scope blocks until every one of them has
//!   finished or been dropped before returning.
//! * [`Runtime::sleep`] / [`Runtime::sleep_until`] are timer futures backed by a
//!   binary heap the drivers service between polls — the basis for session
//!   deadlines ([`with_deadline`]).
//! * [`block_on`] drives one future on the current thread, for callers that need
//!   an await point without a runtime.
//!
//! ## Scheduling
//!
//! A task is an `Arc` holding its boxed future behind a mutex plus a `scheduled`
//! flag.  Waking pushes the task onto the ready queue exactly once (the flag
//! dedupes concurrent wakes); a driver pops it, clears the flag *before*
//! polling (so wakes arriving mid-poll re-queue it), and polls.  A panicking
//! task is dropped — its [`TaskHandle`] reports [`TaskAborted`] — and never
//! takes the driver down.  Cancellation drops the future in place, running the
//! destructors of whatever it held (queued permits, tickets, guards), which is
//! what lets a cancelled session release its resources deterministically.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::journal::{JournalEvent, TracerHandle};
use crate::sync::{lock_recover, wait_timeout_recover};
use crate::telemetry::{Metric, MetricClass, TelemetryHandle};

/// Environment variable overriding the default session-driver count
/// (see [`crate::session::SessionConfig`]); CI runs the async suite at 1 and 4.
pub const DRIVERS_ENV: &str = "ASSERTSOLVER_DRIVERS";

/// Hard ceiling on thread counts accepted from the environment.  A typo like
/// `ASSERTSOLVER_DRIVERS=40000` would otherwise spawn forty thousand OS
/// threads and wedge the process before the first task runs.
pub(crate) const MAX_ENV_THREADS: usize = 512;

/// Outcome of parsing a thread-count knob from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KnobParse {
    /// A usable positive count.
    Ok(usize),
    /// Larger than [`MAX_ENV_THREADS`]; carries the clamped value.
    Clamped(usize),
    /// Zero, negative, or not a number at all.
    Invalid,
}

/// Parses a raw thread-count knob value: `0`, garbage, or an empty string are
/// [`KnobParse::Invalid`] (fall back to the default), and anything above
/// [`MAX_ENV_THREADS`] clamps.  Pure so every knob's policy is testable
/// without touching process-global environment state.
pub(crate) fn parse_thread_knob(raw: &str) -> KnobParse {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => KnobParse::Invalid,
        Ok(n) if n > MAX_ENV_THREADS => KnobParse::Clamped(MAX_ENV_THREADS),
        Ok(n) => KnobParse::Ok(n),
    }
}

/// Applies [`parse_thread_knob`] to one named knob, warning once on stderr
/// when the value is clamped or discarded.
pub(crate) fn resolve_thread_knob(name: &str, raw: &str) -> Option<usize> {
    match parse_thread_knob(raw) {
        KnobParse::Ok(n) => Some(n),
        KnobParse::Clamped(n) => {
            eprintln!("warning: {name}={raw:?} exceeds {MAX_ENV_THREADS} threads; clamped to {n}");
            Some(n)
        }
        KnobParse::Invalid => {
            eprintln!("warning: {name}={raw:?} is not a positive thread count; using the default");
            None
        }
    }
}

/// Reads the driver-count override from the environment, if set and valid.
///
/// Zero or unparsable values fall back to the default with a one-line warning
/// instead of silently vanishing, and absurdly large values clamp to the
/// 512-thread ceiling instead of wedging the process in thread spawns.
pub fn env_drivers() -> Option<usize> {
    let raw = std::env::var(DRIVERS_ENV).ok()?;
    resolve_thread_knob(DRIVERS_ENV, &raw)
}

/// Longest a driver parks between checks for shutdown and due timers.
const MAX_PARK: Duration = Duration::from_millis(50);

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// State shared by every driver, task and timer of one runtime.
struct RtShared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    work: Condvar,
    timers: Mutex<TimerQueue>,
    next_timer_id: AtomicU64,
    shutdown: AtomicBool,
    /// Weak handles to every task ever spawned, so shutdown can cancel tasks
    /// that are *parked* on an external waker (not in the ready queue) — their
    /// `Completer`s must still report `TaskAborted` instead of letting a
    /// `TaskHandle::join` hang.  Pruned opportunistically at spawn.
    tasks: Mutex<Vec<std::sync::Weak<Task>>>,
    /// Journal hook for scheduler diagnostics (task spawns, timer fires).
    /// These are *volatile* events — which driver fires a timer is
    /// interleaving-dependent — so they never enter the deterministic journal.
    tracer: TracerHandle,
    /// Monotone pseudo-id source for spawn diagnostics.
    spawn_seq: AtomicU64,
    /// `rt.poll.duration` histogram: wall-clock of every task poll, resolved
    /// once at runtime construction.  `None` (telemetry off) costs one branch
    /// per poll.
    poll_timer: Option<Arc<Metric>>,
}

/// Pending timers: a min-heap of deadlines plus the live wakers by timer id.
/// Re-polling a [`Sleep`] pushes a fresh heap entry; stale entries (fired or
/// dropped sleeps) are skipped at fire time because their id is no longer in
/// the waker map.
#[derive(Default)]
struct TimerQueue {
    heap: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    wakers: HashMap<u64, Waker>,
}

impl RtShared {
    /// Pops every due timer and wakes its registered waker (outside the lock).
    fn fire_due_timers(&self) {
        let now = Instant::now();
        let mut due = Vec::new();
        {
            let mut timers = lock_recover(&self.timers);
            while let Some(&std::cmp::Reverse((at, id))) = timers.heap.peek() {
                if at > now {
                    break;
                }
                timers.heap.pop();
                if let Some(waker) = timers.wakers.remove(&id) {
                    due.push(waker);
                }
            }
        }
        if self.tracer.is_on() {
            for _ in &due {
                self.tracer.diagnostic(
                    self.spawn_seq.load(Ordering::Relaxed),
                    JournalEvent::Span {
                        name: "timer-fire".to_string(),
                        parent: None,
                    },
                );
            }
        }
        for waker in due {
            waker.wake();
        }
    }

    /// How long a driver may park before the next timer is due.
    fn park_timeout(&self) -> Duration {
        let timers = lock_recover(&self.timers);
        match timers.heap.peek() {
            Some(&std::cmp::Reverse((at, _))) => {
                at.saturating_duration_since(Instant::now()).min(MAX_PARK)
            }
            None => MAX_PARK,
        }
    }
}

/// One spawned future plus its scheduling state.
struct Task {
    shared: Arc<RtShared>,
    /// `None` once the future completed, panicked or was cancelled.
    future: Mutex<Option<BoxFuture>>,
    /// Set while the task sits in the ready queue; dedupes concurrent wakes.
    scheduled: AtomicBool,
    cancelled: AtomicBool,
}

impl Task {
    fn schedule(this: &Arc<Self>) {
        if !this.scheduled.swap(true, Ordering::AcqRel) {
            lock_recover(&this.shared.ready).push_back(Arc::clone(this));
            this.shared.work.notify_one();
        }
    }

    /// Drops the future in place (releasing everything it holds) if it is not
    /// being polled right now; otherwise re-schedules the task so a driver
    /// re-runs it and the pre-poll `cancelled` check drops it.  (The polling
    /// driver's own post-poll check may miss a flag stored after it read the
    /// flag but before it released the mutex — the re-schedule closes that
    /// race, so cancellation never depends on an external wake arriving.)
    fn cancel(this: &Arc<Self>) {
        this.cancelled.store(true, Ordering::Release);
        match this.future.try_lock() {
            Ok(mut slot) => {
                slot.take();
            }
            Err(_) => Task::schedule(this),
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        Task::schedule(&self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Task::schedule(self);
    }
}

/// Polls one ready task.  The `scheduled` flag is cleared *before* polling so a
/// wake that lands mid-poll re-queues the task instead of being lost; a second
/// driver popping that re-queue blocks briefly on the future mutex and then
/// polls again, which is harmless (spurious polls are allowed).
fn run_task(task: Arc<Task>) {
    task.scheduled.store(false, Ordering::Release);
    let mut slot = lock_recover(&task.future);
    if task.cancelled.load(Ordering::Acquire) {
        slot.take();
        return;
    }
    let Some(future) = slot.as_mut() else {
        return; // Already finished; a stale wake.
    };
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    let poll_start = task.shared.poll_timer.as_ref().map(|_| Instant::now());
    let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        future.as_mut().poll(&mut cx)
    }));
    if let (Some(metric), Some(start)) = (&task.shared.poll_timer, poll_start) {
        metric.observe_duration(start.elapsed());
    }
    match polled {
        Ok(Poll::Pending) => {
            if task.cancelled.load(Ordering::Acquire) {
                slot.take();
            }
        }
        // Completed or panicked: drop the future either way.  A panic unwinds
        // the task, not the driver; its handle reports `TaskAborted`.
        Ok(Poll::Ready(())) | Err(_) => {
            slot.take();
        }
    }
}

fn driver_loop(shared: Arc<RtShared>) {
    loop {
        shared.fire_due_timers();
        let task = {
            let mut ready = lock_recover(&shared.ready);
            match ready.pop_front() {
                Some(task) => Some(task),
                None => {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let timeout = shared.park_timeout();
                    let (mut ready, _) = wait_timeout_recover(&shared.work, ready, timeout);
                    ready.pop_front()
                }
            }
        };
        if let Some(task) = task {
            run_task(task);
        } else if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Why a joined task produced no value: its future was cancelled, or it
/// panicked (the driver absorbed the panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAborted;

impl std::fmt::Display for TaskAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was cancelled or panicked before completing")
    }
}

impl std::error::Error for TaskAborted {}

struct HandleState<T> {
    value: Option<Result<T, TaskAborted>>,
    waker: Option<Waker>,
    done: bool,
}

struct HandleInner<T> {
    state: Mutex<HandleState<T>>,
    done_cv: Condvar,
}

impl<T> HandleInner<T> {
    fn finish(&self, value: Result<T, TaskAborted>) {
        let waker = {
            let mut state = lock_recover(&self.state);
            if state.done {
                return;
            }
            state.value = Some(value);
            state.done = true;
            state.waker.take()
        };
        self.done_cv.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Completion side of a [`TaskHandle`], owned by the spawned future's wrapper.
/// Dropping it without [`Completer::finish`] — cancellation, panic, or a
/// runtime torn down with the task still pending — reports [`TaskAborted`].
struct Completer<T> {
    inner: Arc<HandleInner<T>>,
}

impl<T> Completer<T> {
    fn finish(self, value: T) {
        self.inner.finish(Ok(value));
        // `Drop` re-checking `done` makes the second finish a no-op.
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        self.inner.finish(Err(TaskAborted));
    }
}

/// Await-handle for a spawned task: join it (blocking), poll it (as a future),
/// or cancel it.
pub struct TaskHandle<T> {
    inner: Arc<HandleInner<T>>,
    task: Arc<Task>,
}

impl<T> TaskHandle<T> {
    /// Blocks until the task finishes; `Err(TaskAborted)` if it was cancelled
    /// or panicked.
    pub fn join(self) -> Result<T, TaskAborted> {
        let mut state = lock_recover(&self.inner.state);
        loop {
            if let Some(value) = state.value.take() {
                return value;
            }
            if state.done {
                return Err(TaskAborted);
            }
            state = self
                .inner
                .done_cv
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Requests cancellation: the task's future is dropped at the earliest safe
    /// point (immediately if it is parked, after the in-flight poll otherwise),
    /// releasing everything it holds.  Joining then reports [`TaskAborted`].
    pub fn cancel(&self) {
        Task::cancel(&self.task);
    }

    /// Whether the task has finished (completed, panicked or been cancelled).
    pub fn is_finished(&self) -> bool {
        lock_recover(&self.inner.state).done
    }
}

impl<T> Future for TaskHandle<T> {
    type Output = Result<T, TaskAborted>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = lock_recover(&self.inner.state);
        if let Some(value) = state.value.take() {
            return Poll::Ready(value);
        }
        if state.done {
            return Poll::Ready(Err(TaskAborted));
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Tracks how many scoped tasks are still alive; [`Runtime::scope`] blocks on
/// it before returning, which is what makes the borrowed spawns sound.
struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
}

impl ScopeState {
    fn increment(&self) {
        *lock_recover(&self.pending) += 1;
    }

    fn decrement(&self) {
        let mut pending = lock_recover(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut pending = lock_recover(&self.pending);
        while *pending > 0 {
            pending = self
                .drained
                .wait(pending)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Wrapper that guarantees the scope's pending count drops only *after* the
/// wrapped future (and every borrow it captured) has been destroyed.  Struct
/// drop order alone is not a guarantee we want to lean on for a soundness
/// invariant, so the order is made explicit in `Drop`.
struct Tracked<F: Future<Output = ()>> {
    future: ManuallyDrop<F>,
    scope: Arc<ScopeState>,
}

impl<F: Future<Output = ()>> Future for Tracked<F> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Safety: `future` is structurally pinned — it is never moved out of
        // the wrapper; `Drop` destroys it in place via `ManuallyDrop::drop`.
        unsafe { self.map_unchecked_mut(|this| &mut *this.future) }.poll(cx)
    }
}

impl<F: Future<Output = ()>> Drop for Tracked<F> {
    fn drop(&mut self) {
        // Safety: dropped exactly once, here; the field is not used afterwards.
        unsafe { ManuallyDrop::drop(&mut self.future) };
        self.scope.decrement();
    }
}

/// A spawn scope whose tasks may borrow from the enclosing stack frame.
///
/// Created by [`Runtime::scope`]; mirrors `std::thread::scope`: `'env` is the
/// lifetime of the borrowed environment, `'scope` the lifetime of the scope
/// itself, and the scope does not return until every spawned task has finished
/// or been dropped.
pub struct Scope<'scope, 'env: 'scope> {
    runtime: &'scope Runtime,
    state: Arc<ScopeState>,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a future that may borrow from `'env`, returning its handle.
    pub fn spawn<T, F>(&'scope self, future: F) -> TaskHandle<T>
    where
        F: Future<Output = T> + Send + 'env,
        T: Send + 'env,
    {
        let inner = Arc::new(HandleInner {
            state: Mutex::new(HandleState {
                value: None,
                waker: None,
                done: false,
            }),
            done_cv: Condvar::new(),
        });
        let completer = Completer {
            inner: Arc::clone(&inner),
        };
        self.state.increment();
        let tracked = Tracked {
            future: ManuallyDrop::new(async move {
                completer.finish(future.await);
            }),
            scope: Arc::clone(&self.state),
        };
        let boxed: Pin<Box<dyn Future<Output = ()> + Send + 'env>> = Box::pin(tracked);
        // Safety: lifetime erasure only — same type, same vtable.  The erased
        // future cannot outlive `'env` because `Runtime::scope` blocks (via
        // `ScopeState::wait_drained`) until every `Tracked` wrapper has been
        // destroyed, and `Tracked::drop` destroys the future before
        // decrementing the count.  After that point the runtime retains at
        // most empty task shells (`future` slot `None`), which borrow nothing.
        let boxed: BoxFuture = unsafe { std::mem::transmute(boxed) };
        let task = self.runtime.spawn_boxed(boxed);
        TaskHandle { inner, task }
    }
}

/// Ensures the scope waits for its tasks even when the scope body panics.
struct ScopeWait<'a>(&'a ScopeState);

impl Drop for ScopeWait<'_> {
    fn drop(&mut self) {
        self.0.wait_drained();
    }
}

/// The executor: N driver threads multiplexing every spawned task.
pub struct Runtime {
    shared: Arc<RtShared>,
    drivers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Starts `drivers` driver threads (clamped to at least 1).
    pub fn new(drivers: usize) -> Self {
        Self::with_tracer(drivers, TracerHandle::off())
    }

    /// Starts `drivers` driver threads with a journal tracer installed; the
    /// scheduler emits volatile spawn/timer diagnostics to it.  With
    /// [`TracerHandle::off`] this is exactly [`Runtime::new`].
    pub fn with_tracer(drivers: usize, tracer: TracerHandle) -> Self {
        Self::with_hooks(drivers, tracer, &TelemetryHandle::off())
    }

    /// Starts `drivers` driver threads with both observability hooks
    /// installed: the journal tracer for scheduler diagnostics and the
    /// telemetry registry for the `rt.poll.duration` histogram.  Either hook
    /// may be off.
    pub fn with_hooks(drivers: usize, tracer: TracerHandle, telemetry: &TelemetryHandle) -> Self {
        let shared = Arc::new(RtShared {
            ready: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            timers: Mutex::new(TimerQueue::default()),
            next_timer_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            tasks: Mutex::new(Vec::new()),
            tracer,
            spawn_seq: AtomicU64::new(0),
            poll_timer: telemetry.histogram("rt.poll.duration", MetricClass::Volatile),
        });
        let drivers = (0..drivers.max(1))
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("svserve-driver-{idx}"))
                    .spawn(move || driver_loop(shared))
                    .expect("spawn driver thread")
            })
            .collect();
        Self { shared, drivers }
    }

    /// Number of driver threads.
    pub fn drivers(&self) -> usize {
        self.drivers.len()
    }

    fn spawn_boxed(&self, future: BoxFuture) -> Arc<Task> {
        if self.shared.tracer.is_on() {
            let id = self.shared.spawn_seq.fetch_add(1, Ordering::Relaxed);
            self.shared.tracer.diagnostic(
                id,
                JournalEvent::Span {
                    name: "task-spawn".to_string(),
                    parent: None,
                },
            );
        }
        let task = Arc::new(Task {
            shared: Arc::clone(&self.shared),
            future: Mutex::new(Some(future)),
            scheduled: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
        });
        {
            let mut tasks = lock_recover(&self.shared.tasks);
            // Amortized pruning keeps the registry proportional to live tasks
            // on long-lived runtimes.
            if tasks.len() >= 1024 && tasks.len().is_power_of_two() {
                tasks.retain(|weak| weak.strong_count() > 0);
            }
            tasks.push(Arc::downgrade(&task));
        }
        Task::schedule(&task);
        task
    }

    /// Spawns a `'static` future onto the drivers, returning its handle.
    pub fn spawn<T, F>(&self, future: F) -> TaskHandle<T>
    where
        F: Future<Output = T> + Send + 'static,
        T: Send + 'static,
    {
        let inner = Arc::new(HandleInner {
            state: Mutex::new(HandleState {
                value: None,
                waker: None,
                done: false,
            }),
            done_cv: Condvar::new(),
        });
        let completer = Completer {
            inner: Arc::clone(&inner),
        };
        let task = self.spawn_boxed(Box::pin(async move {
            completer.finish(future.await);
        }));
        TaskHandle { inner, task }
    }

    /// Runs `body` with a [`Scope`] whose spawned futures may borrow from the
    /// caller's stack; blocks until every spawned task has finished or been
    /// dropped before returning (even if `body` panics).
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            drained: Condvar::new(),
        });
        let wait = ScopeWait(&state);
        let scope = Scope {
            runtime: self,
            state: Arc::clone(&state),
            _scope: PhantomData,
            _env: PhantomData,
        };
        let result = body(&scope);
        drop(wait); // Block until the scope has drained.
        result
    }

    /// A future that completes at `at` (immediately if `at` has passed).
    pub fn sleep_until(&self, at: Instant) -> Sleep {
        Sleep {
            shared: Arc::clone(&self.shared),
            at,
            id: self.shared.next_timer_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A future that completes after `duration`.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for handle in self.drivers.drain(..) {
            let _ = handle.join();
        }
        // Cancel every task still alive — queued *or* parked on an external
        // waker — so each `Completer` reports `TaskAborted` to its handle
        // instead of a `join` hanging forever.  (Scoped tasks cannot reach
        // this point: their scope drained before the runtime could be
        // dropped.)
        lock_recover(&self.shared.ready).clear();
        let leftover: Vec<std::sync::Weak<Task>> =
            lock_recover(&self.shared.tasks).drain(..).collect();
        for weak in leftover {
            if let Some(task) = weak.upgrade() {
                Task::cancel(&task);
            }
        }
    }
}

/// Timer future created by [`Runtime::sleep`] / [`Runtime::sleep_until`].
pub struct Sleep {
    shared: Arc<RtShared>,
    at: Instant,
    id: u64,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.at {
            return Poll::Ready(());
        }
        {
            let mut timers = lock_recover(&self.shared.timers);
            // One heap entry per registration, not per poll: a re-poll (every
            // wake of a deadline-wrapped session) only refreshes the waker.
            if timers.wakers.insert(self.id, cx.waker().clone()).is_none() {
                timers.heap.push(std::cmp::Reverse((self.at, self.id)));
            }
        }
        // A driver may be parked past this deadline; nudge one so the park
        // timeout is recomputed against the new earliest timer.
        self.shared.work.notify_one();
        if Instant::now() >= self.at {
            // The deadline passed between the check and the registration; the
            // registered waker will still fire, but don't make the caller wait.
            return Poll::Ready(());
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        // The heap entry stays (skipped at fire time); only the waker matters.
        lock_recover(&self.shared.timers).wakers.remove(&self.id);
    }
}

/// Outcome of racing a future against a deadline (see [`with_deadline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expiry<T> {
    /// The future completed before the deadline.
    Completed(T),
    /// The deadline fired first; the future was dropped unfinished.
    Expired,
}

impl<T> Expiry<T> {
    /// The completed value, if the deadline did not fire first.
    pub fn completed(self) -> Option<T> {
        match self {
            Expiry::Completed(value) => Some(value),
            Expiry::Expired => None,
        }
    }
}

/// Races `future` against `deadline` (a [`Sleep`], typically from
/// [`Runtime::sleep`]); the future is polled first, so a result that is ready
/// at the deadline still counts as completed.
pub fn with_deadline<F: Future>(future: F, deadline: Sleep) -> WithDeadline<F> {
    WithDeadline {
        future,
        deadline,
        done: false,
    }
}

/// Future returned by [`with_deadline`].
pub struct WithDeadline<F: Future> {
    future: F,
    deadline: Sleep,
    done: bool,
}

impl<F: Future> Future for WithDeadline<F> {
    type Output = Expiry<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: standard pin projection; neither field is moved out.
        let this = unsafe { self.get_unchecked_mut() };
        assert!(!this.done, "WithDeadline polled after completion");
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(value) = future.poll(cx) {
            this.done = true;
            return Poll::Ready(Expiry::Completed(value));
        }
        if Pin::new(&mut this.deadline).poll(cx).is_ready() {
            this.done = true;
            return Poll::Ready(Expiry::Expired);
        }
        Poll::Pending
    }
}

/// Drives one future to completion on the current thread (no runtime needed);
/// the thread parks between polls.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct Parker {
        woken: Mutex<bool>,
        cv: Condvar,
    }

    impl Wake for Parker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            *lock_recover(&self.woken) = true;
            self.cv.notify_one();
        }
    }

    let parker = Arc::new(Parker {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(value) = future.as_mut().poll(&mut cx) {
            return value;
        }
        let mut woken = lock_recover(&parker.woken);
        while !*woken {
            // Timed wait as a safety net against a future that loses its
            // waker: on timeout, break out and re-poll (a spurious poll is
            // always allowed) instead of waiting for a wake that may never
            // come.
            let (guard, timeout) = wait_timeout_recover(&parker.cv, woken, MAX_PARK);
            woken = guard;
            if timeout.timed_out() {
                break;
            }
        }
        *woken = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawned_tasks_complete_and_join() {
        let rt = Runtime::new(2);
        let handles: Vec<TaskHandle<usize>> =
            (0..64).map(|i| rt.spawn(async move { i * 2 })).collect();
        let values: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_are_also_futures() {
        let rt = Runtime::new(1);
        let inner = rt.spawn(async { 7usize });
        let outer = rt.spawn(async move { inner.await.unwrap() + 1 });
        assert_eq!(outer.join(), Ok(8));
    }

    #[test]
    fn a_panicking_task_reports_aborted_without_killing_the_driver() {
        let rt = Runtime::new(1);
        let bad: TaskHandle<()> = rt.spawn(async { panic!("task panic") });
        assert_eq!(bad.join(), Err(TaskAborted));
        // The single driver survived and still serves work.
        assert_eq!(rt.spawn(async { 3usize }).join(), Ok(3));
    }

    #[test]
    fn scoped_tasks_may_borrow_the_stack() {
        let rt = Runtime::new(2);
        let values = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        rt.scope(|scope| {
            let handles: Vec<_> = values
                .iter()
                .map(|v| {
                    scope.spawn(async {
                        total.fetch_add(*v as usize, Ordering::SeqCst);
                        *v
                    })
                })
                .collect();
            let sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(sum, 10);
        });
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_waits_for_detached_tasks() {
        let rt = Runtime::new(2);
        let done = AtomicUsize::new(0);
        rt.scope(|scope| {
            for _ in 0..8 {
                // Handles dropped immediately: the scope must still wait.
                drop(scope.spawn(async {
                    done.fetch_add(1, Ordering::SeqCst);
                }));
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn cancellation_drops_the_future_and_reports_aborted() {
        struct NotifyOnDrop(Arc<AtomicUsize>);
        impl Drop for NotifyOnDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let rt = Runtime::new(1);
        let drops = Arc::new(AtomicUsize::new(0));
        let guard = NotifyOnDrop(Arc::clone(&drops));
        // A future that never completes on its own.
        let handle: TaskHandle<()> = rt.spawn(async move {
            let _guard = guard;
            std::future::pending::<()>().await;
        });
        // Let the driver park it first.
        std::thread::sleep(Duration::from_millis(20));
        handle.cancel();
        assert_eq!(handle.join(), Err(TaskAborted));
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "cancelling must drop the future (and run its destructors)"
        );
    }

    #[test]
    fn dropping_the_runtime_aborts_parked_tasks_instead_of_hanging_joins() {
        let rt = Runtime::new(1);
        // A task that parks forever on an external waker: it leaves the ready
        // queue after its first poll, so only the task registry can reach it.
        let handle: TaskHandle<()> = rt.spawn(std::future::pending());
        std::thread::sleep(Duration::from_millis(20));
        assert!(!handle.is_finished());
        drop(rt);
        assert_eq!(
            handle.join(),
            Err(TaskAborted),
            "shutdown must cancel parked tasks so joins cannot hang"
        );
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let rt = Runtime::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();
        let handles: Vec<_> = [30u64, 10, 20]
            .into_iter()
            .map(|ms| {
                let sleep = rt.sleep(Duration::from_millis(ms));
                let order = Arc::clone(&order);
                rt.spawn(async move {
                    sleep.await;
                    order.lock().unwrap().push(ms);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn deadlines_expire_pending_futures_and_spare_finished_ones() {
        let rt = Runtime::new(1);
        let stuck = with_deadline(
            std::future::pending::<()>(),
            rt.sleep(Duration::from_millis(10)),
        );
        let quick = with_deadline(async { 5usize }, rt.sleep(Duration::from_secs(5)));
        let (stuck, quick) = rt.scope(|scope| {
            let a = scope.spawn(stuck);
            let b = scope.spawn(quick);
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(stuck, Expiry::Expired);
        assert_eq!(quick, Expiry::Completed(5));
        assert_eq!(quick.completed(), Some(5));
    }

    #[test]
    fn block_on_drives_a_future_without_a_runtime() {
        let rt = Runtime::new(1);
        let handle = rt.spawn(async { 11usize });
        assert_eq!(block_on(async { handle.await.unwrap() + 1 }), 12);
    }

    #[test]
    fn env_override_parses_only_positive_integers() {
        assert_eq!(parse_thread_knob(" 4 "), KnobParse::Ok(4));
        assert_eq!(parse_thread_knob("0"), KnobParse::Invalid);
        assert_eq!(parse_thread_knob("lots"), KnobParse::Invalid);
        assert_eq!(parse_thread_knob(""), KnobParse::Invalid);
        assert_eq!(parse_thread_knob("-3"), KnobParse::Invalid);
    }

    #[test]
    fn env_override_clamps_huge_thread_counts() {
        // Regression: `ASSERTSOLVER_DRIVERS=40000` used to be taken at face
        // value and spawn forty thousand driver threads.
        assert_eq!(
            parse_thread_knob("40000"),
            KnobParse::Clamped(MAX_ENV_THREADS)
        );
        assert_eq!(
            parse_thread_knob(&usize::MAX.to_string()),
            KnobParse::Clamped(MAX_ENV_THREADS)
        );
        assert_eq!(
            parse_thread_knob(&MAX_ENV_THREADS.to_string()),
            KnobParse::Ok(MAX_ENV_THREADS)
        );
        // The resolver surfaces clamped/invalid values as warnings but still
        // returns a usable count (or the default sentinel `None`).
        assert_eq!(
            resolve_thread_knob("TEST_KNOB", "40000"),
            Some(MAX_ENV_THREADS)
        );
        assert_eq!(resolve_thread_knob("TEST_KNOB", "0"), None);
        assert_eq!(resolve_thread_knob("TEST_KNOB", "garbage"), None);
        assert_eq!(resolve_thread_knob("TEST_KNOB", "8"), Some(8));
    }
}
