//! Versioned on-disk snapshots for the response and verdict caches.
//!
//! Both pool caches are pure content-addressed maps — responses are a deterministic
//! function of `(case, samples, temperature, model, seed)` and verdicts of
//! `(case, response, CheckConfig)` — so their contents can be spilled to disk and
//! reloaded by a later process without changing any result.  This module is the
//! "cache persistence & warmup" layer: repeated benchmark runs against the same
//! [`CACHE_DIR_ENV`] directory skip already-resolved cases entirely.
//!
//! ## Snapshot format
//!
//! A snapshot is a single JSON document (vendored `serde_json`) with two parts:
//!
//! * a [`SnapshotHeader`] carrying the format version, the cache kind
//!   ([`RESPONSE_KIND`] or [`VERDICT_KIND`]), a hex fingerprint of the
//!   configuration the cached values depend on (service seed for responses,
//!   `svverify::CheckConfig::fingerprint()` for verdicts), and the model identity;
//! * the entries, each pairing a hex-encoded 128-bit content key with its cached
//!   value, sorted by key so `snapshot → load → snapshot` is byte-stable.
//!
//! ## Invalidation rules
//!
//! Loading **never** fails the service: every problem degrades to a cold start.
//! A snapshot is rejected (and counted in the pool's `snapshot_rejects` metric)
//! when any of the following mismatch the expectations of the loading pool:
//!
//! | check | guards against |
//! |---|---|
//! | file parses as JSON | corruption, truncated writes |
//! | `format_version` | old processes reading a future layout |
//! | `kind` | pointing a verdict pool at a response snapshot |
//! | `fingerprint` | stale seeds / changed bounded-check parameters |
//! | `model` | responses sampled by a different model |
//! | every key decodes as 128-bit hex | hand-edited or garbled entries |
//!
//! ## Atomicity
//!
//! [`write_atomic`] writes to a process-unique temporary file in the target
//! directory and renames it into place, so readers only ever observe either the
//! previous snapshot or the complete new one — never a torn write.  A crashed
//! writer leaves at worst a stale `.tmp` file behind, which later writers ignore.

use crate::cache::{CaseKey, VerdictKey};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use svmodel::Response;

/// Version stamp written into every snapshot; bump on any layout change so older
/// binaries invalidate newer snapshots (and vice versa) instead of misreading them.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Snapshot kind tag for response-cache files (repair pool).
pub const RESPONSE_KIND: &str = "response-cache";

/// Snapshot kind tag for verdict-cache files (verify pool).
pub const VERDICT_KIND: &str = "verdict-cache";

/// Environment variable naming the cache directory `assertsolver::EvalConfig`
/// persists to; when set, `evaluate_model` runs warm across process invocations.
pub const CACHE_DIR_ENV: &str = "ASSERTSOLVER_CACHE_DIR";

/// Reads the cache-directory override from the environment, if set and non-empty.
pub fn env_cache_dir() -> Option<PathBuf> {
    std::env::var(CACHE_DIR_ENV)
        .ok()
        .map(|raw| raw.trim().to_string())
        .filter(|raw| !raw.is_empty())
        .map(PathBuf::from)
}

/// Where and under what identity a pool persists its cache.
///
/// The fingerprint and model are folded into the [`SnapshotHeader`]; a pool loading
/// a snapshot whose header disagrees with its own spec falls back to a cold start.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistSpec {
    /// Snapshot file path (parent directories are created on save).
    pub path: PathBuf,
    /// Raw bytes of the configuration the cached values depend on (service seed
    /// for responses, `CheckConfig::fingerprint()` for verdicts).
    pub fingerprint: Vec<u8>,
    /// Identity of the model the cached values were computed with; verdict
    /// snapshots, being model-agnostic, conventionally use `"-"`.
    pub model: String,
}

impl PersistSpec {
    /// Convenience constructor.
    pub fn new(path: impl Into<PathBuf>, fingerprint: &[u8], model: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            fingerprint: fingerprint.to_vec(),
            model: model.into(),
        }
    }
}

/// The identity block at the top of every snapshot file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Layout version; see [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Cache kind: [`RESPONSE_KIND`] or [`VERDICT_KIND`].
    pub kind: String,
    /// Lower-hex encoding of the configuration fingerprint bytes.
    pub fingerprint: String,
    /// Model identity the cached values were computed with.
    pub model: String,
}

impl SnapshotHeader {
    /// The header a pool with the given spec expects (and writes).
    pub fn expected(kind: &str, spec: &PersistSpec) -> Self {
        Self {
            format_version: SNAPSHOT_FORMAT_VERSION,
            kind: kind.to_string(),
            fingerprint: hex(&spec.fingerprint),
            model: spec.model.clone(),
        }
    }

    /// Returns the first reason this header does not match `expected`, if any.
    pub fn mismatch(&self, expected: &Self) -> Option<String> {
        if self.format_version != expected.format_version {
            return Some(format!(
                "format version {} (expected {})",
                self.format_version, expected.format_version
            ));
        }
        if self.kind != expected.kind {
            return Some(format!(
                "kind {:?} (expected {:?})",
                self.kind, expected.kind
            ));
        }
        if self.fingerprint != expected.fingerprint {
            return Some("configuration fingerprint mismatch".to_string());
        }
        if self.model != expected.model {
            return Some(format!(
                "model {:?} (expected {:?})",
                self.model, expected.model
            ));
        }
        None
    }
}

/// FNV-1a/64 of arbitrary bytes.
///
/// The shared short-hash helper for snapshot-adjacent naming and identity (e.g.
/// collision-proof snapshot file names, protocol-keyed reference files) so call
/// sites don't each hand-roll the constants.  Not a cache key — the caches use
/// the 128-bit variant in [`crate::cache`].
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Lower-hex encoding of arbitrary bytes (used for header fingerprints).
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Encodes a 128-bit content key as fixed-width lower hex.
pub fn encode_key(raw: u128) -> String {
    format!("{raw:032x}")
}

/// Decodes a key written by [`encode_key`]; `None` on any malformed input.
///
/// Only the canonical form is accepted — exactly 32 lower-hex digits — so
/// non-canonical spellings `from_str_radix` would tolerate (a leading `+`,
/// uppercase digits) are rejected, keeping load → save byte-stable.
pub fn decode_key(text: &str) -> Option<u128> {
    if text.len() != 32
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

/// One persisted response-cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEntry {
    /// Hex-encoded [`CaseKey`].
    pub key: String,
    /// The cached response set, in sampling order.
    pub responses: Vec<Response>,
}

/// On-disk form of a repair pool's response cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSnapshot {
    /// Identity block; checked before any entry is loaded.
    pub header: SnapshotHeader,
    /// Entries sorted by key.
    pub entries: Vec<ResponseEntry>,
}

/// One persisted verdict-cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictEntry {
    /// Hex-encoded [`VerdictKey`].
    pub key: String,
    /// The cached verdict.
    pub verdict: bool,
}

/// On-disk form of a verify pool's verdict cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictSnapshot {
    /// Identity block; checked before any entry is loaded.
    pub header: SnapshotHeader,
    /// Entries sorted by key.
    pub entries: Vec<VerdictEntry>,
}

/// Outcome of attempting to load a snapshot.
///
/// `Missing` and `Rejected` both mean "cold start" — the distinction only matters
/// for metrics (`snapshot_rejects`) and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotLoad<T> {
    /// The snapshot matched and its entries were decoded.
    Loaded(T),
    /// No snapshot file exists yet (the normal first-run case).
    Missing,
    /// A file exists but is corrupt, truncated, or carries a mismatched header;
    /// the string says why.  The pool starts cold.
    Rejected(String),
}

fn read_snapshot<T: Deserialize>(path: &Path) -> SnapshotLoad<T> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(err) => return SnapshotLoad::Rejected(format!("unreadable snapshot: {err}")),
    };
    match serde_json::from_str(&text) {
        Ok(snapshot) => SnapshotLoad::Loaded(snapshot),
        Err(err) => SnapshotLoad::Rejected(format!("unparseable snapshot: {err}")),
    }
}

/// Loads a response snapshot, validating the header against `spec`.
///
/// Every failure mode — missing file, corrupt JSON, version/kind/fingerprint/model
/// mismatch, malformed key — degrades to a cold start; nothing panics or errors.
pub fn load_response_snapshot(
    spec: &PersistSpec,
) -> SnapshotLoad<Vec<(CaseKey, Arc<Vec<Response>>)>> {
    let snapshot: ResponseSnapshot = match read_snapshot(&spec.path) {
        SnapshotLoad::Loaded(snapshot) => snapshot,
        SnapshotLoad::Missing => return SnapshotLoad::Missing,
        SnapshotLoad::Rejected(reason) => return SnapshotLoad::Rejected(reason),
    };
    if let Some(reason) = snapshot
        .header
        .mismatch(&SnapshotHeader::expected(RESPONSE_KIND, spec))
    {
        return SnapshotLoad::Rejected(reason);
    }
    let mut entries = Vec::with_capacity(snapshot.entries.len());
    for entry in snapshot.entries {
        let Some(raw) = decode_key(&entry.key) else {
            return SnapshotLoad::Rejected(format!("malformed key {:?}", entry.key));
        };
        entries.push((CaseKey(raw), Arc::new(entry.responses)));
    }
    SnapshotLoad::Loaded(entries)
}

/// Loads a verdict snapshot, validating the header against `spec`.
///
/// Same degradation contract as [`load_response_snapshot`].
pub fn load_verdict_snapshot(spec: &PersistSpec) -> SnapshotLoad<Vec<(VerdictKey, bool)>> {
    let snapshot: VerdictSnapshot = match read_snapshot(&spec.path) {
        SnapshotLoad::Loaded(snapshot) => snapshot,
        SnapshotLoad::Missing => return SnapshotLoad::Missing,
        SnapshotLoad::Rejected(reason) => return SnapshotLoad::Rejected(reason),
    };
    if let Some(reason) = snapshot
        .header
        .mismatch(&SnapshotHeader::expected(VERDICT_KIND, spec))
    {
        return SnapshotLoad::Rejected(reason);
    }
    let mut entries = Vec::with_capacity(snapshot.entries.len());
    for entry in snapshot.entries {
        let Some(raw) = decode_key(&entry.key) else {
            return SnapshotLoad::Rejected(format!("malformed key {:?}", entry.key));
        };
        entries.push((VerdictKey(raw), entry.verdict));
    }
    SnapshotLoad::Loaded(entries)
}

/// Saves a response snapshot atomically; returns the number of entries written.
///
/// Entries are sorted by key before writing, so saving, loading and saving again
/// produces byte-identical files regardless of cache insertion order or worker
/// count.
pub fn save_response_snapshot(
    spec: &PersistSpec,
    mut entries: Vec<(CaseKey, Arc<Vec<Response>>)>,
) -> io::Result<usize> {
    entries.sort_by_key(|(key, _)| *key);
    let snapshot = ResponseSnapshot {
        header: SnapshotHeader::expected(RESPONSE_KIND, spec),
        entries: entries
            .into_iter()
            .map(|(key, responses)| ResponseEntry {
                key: encode_key(key.0),
                responses: (*responses).clone(),
            })
            .collect(),
    };
    let count = snapshot.entries.len();
    let json = serde_json::to_string(&snapshot)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    write_atomic(&spec.path, &json)?;
    Ok(count)
}

/// Saves a verdict snapshot atomically; returns the number of entries written.
///
/// Same byte-stability contract as [`save_response_snapshot`].
///
/// ```
/// use svserve::persist::{
///     load_verdict_snapshot, save_verdict_snapshot, PersistSpec, SnapshotLoad,
/// };
/// use svserve::VerdictKey;
///
/// let dir = std::env::temp_dir().join(format!("svserve-doc-{}", std::process::id()));
/// let spec = PersistSpec::new(dir.join("verdicts.json"), b"check-config", "-");
/// save_verdict_snapshot(&spec, vec![(VerdictKey(7), true), (VerdictKey(3), false)]).unwrap();
/// assert_eq!(
///     load_verdict_snapshot(&spec),
///     SnapshotLoad::Loaded(vec![(VerdictKey(3), false), (VerdictKey(7), true)]),
/// );
/// // A spec with a different fingerprint rejects the file instead of loading it.
/// let stale = PersistSpec::new(spec.path.clone(), b"other-config", "-");
/// assert!(matches!(load_verdict_snapshot(&stale), SnapshotLoad::Rejected(_)));
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn save_verdict_snapshot(
    spec: &PersistSpec,
    mut entries: Vec<(VerdictKey, bool)>,
) -> io::Result<usize> {
    entries.sort_by_key(|(key, _)| *key);
    let snapshot = VerdictSnapshot {
        header: SnapshotHeader::expected(VERDICT_KIND, spec),
        entries: entries
            .into_iter()
            .map(|(key, verdict)| VerdictEntry {
                key: encode_key(key.0),
                verdict,
            })
            .collect(),
    };
    let count = snapshot.entries.len();
    let json = serde_json::to_string(&snapshot)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    write_atomic(&spec.path, &json)?;
    Ok(count)
}

/// Writes `contents` to `path` atomically: temp file in the same directory, then
/// rename.  Creates parent directories as needed.  Readers never observe a torn
/// write because the rename either fully replaces the old file or leaves it alone.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(parent) = parent {
        std::fs::create_dir_all(parent)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            )
        })?
        .to_string_lossy()
        .into_owned();
    // The temp name is unique per write (pid + global counter) so concurrent
    // writers — including two pools in one process flushing a shared snapshot —
    // cannot clobber each other's half-written file; the final rename still races
    // benignly (last complete snapshot wins).
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{seq}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(err) => {
            let _ = std::fs::remove_file(&tmp);
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spec(tag: &str) -> PersistSpec {
        let dir =
            std::env::temp_dir().join(format!("svserve-persist-unit-{}-{tag}", std::process::id()));
        PersistSpec::new(dir.join("snap.json"), b"fp", "model-a")
    }

    fn cleanup(spec: &PersistSpec) {
        if let Some(dir) = spec.path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    fn response(line: u32) -> Response {
        Response {
            bug_line_number: line,
            buggy_line: format!("buggy {line}"),
            fixed_line: format!("fixed {line}"),
            cot: if line.is_multiple_of(2) {
                Some(format!("because {line}"))
            } else {
                None
            },
        }
    }

    #[test]
    fn key_codec_round_trips_and_rejects_garbage() {
        for raw in [0u128, 1, u128::MAX, 0xdead_beef] {
            assert_eq!(decode_key(&encode_key(raw)), Some(raw));
        }
        assert_eq!(decode_key(""), None);
        assert_eq!(decode_key("zz"), None);
        assert_eq!(decode_key(&"f".repeat(33)), None);
        // Non-canonical but parseable widths are rejected too (fixed 32 chars).
        assert_eq!(decode_key("ff"), None);
        // Only canonical lower-hex digits: no sign, no uppercase, no whitespace.
        assert_eq!(decode_key("+0000000000000000000000000000001"), None);
        assert_eq!(decode_key(&"F".repeat(32)), None);
        assert_eq!(decode_key(" 000000000000000000000000000000f"), None);
    }

    #[test]
    fn response_snapshot_round_trips_with_recency_independent_bytes() {
        let spec = temp_spec("resp-roundtrip");
        let entries = vec![
            (CaseKey(9), Arc::new(vec![response(1), response(2)])),
            (CaseKey(2), Arc::new(vec![])),
        ];
        save_response_snapshot(&spec, entries.clone()).unwrap();
        let first_bytes = std::fs::read(&spec.path).unwrap();
        let SnapshotLoad::Loaded(loaded) = load_response_snapshot(&spec) else {
            panic!("snapshot must load");
        };
        // Loaded sorted by key.
        assert_eq!(loaded[0].0, CaseKey(2));
        assert_eq!(loaded[1].0, CaseKey(9));
        assert_eq!(*loaded[1].1, vec![response(1), response(2)]);
        // Saving what was loaded reproduces the file byte for byte.
        save_response_snapshot(&spec, loaded).unwrap();
        assert_eq!(std::fs::read(&spec.path).unwrap(), first_bytes);
        cleanup(&spec);
    }

    #[test]
    fn missing_corrupt_and_mismatched_snapshots_degrade_to_cold_start() {
        let spec = temp_spec("degrade");
        assert_eq!(load_verdict_snapshot(&spec), SnapshotLoad::Missing);

        // Corrupt bytes.
        std::fs::create_dir_all(spec.path.parent().unwrap()).unwrap();
        std::fs::write(&spec.path, "{ not json at all").unwrap();
        assert!(matches!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // Truncated valid JSON.
        save_verdict_snapshot(&spec, vec![(VerdictKey(1), true)]).unwrap();
        let full = std::fs::read_to_string(&spec.path).unwrap();
        std::fs::write(&spec.path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // Version mismatch.
        let bumped = full.replace(
            &format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}"),
            &format!("\"format_version\":{}", SNAPSHOT_FORMAT_VERSION + 1),
        );
        assert_ne!(bumped, full, "version field must be present to rewrite");
        std::fs::write(&spec.path, &bumped).unwrap();
        let SnapshotLoad::Rejected(reason) = load_verdict_snapshot(&spec) else {
            panic!("future format version must be rejected");
        };
        assert!(
            reason.contains("format version"),
            "unexpected reason {reason}"
        );

        // Fingerprint and model mismatches.
        std::fs::write(&spec.path, &full).unwrap();
        let other_fp = PersistSpec {
            fingerprint: b"other".to_vec(),
            ..spec.clone()
        };
        assert!(matches!(
            load_verdict_snapshot(&other_fp),
            SnapshotLoad::Rejected(_)
        ));
        let other_model = PersistSpec {
            model: "model-b".into(),
            ..spec.clone()
        };
        assert!(matches!(
            load_verdict_snapshot(&other_model),
            SnapshotLoad::Rejected(_)
        ));

        // Kind confusion: a verdict file is not a response snapshot.
        std::fs::write(&spec.path, &full).unwrap();
        assert!(matches!(
            load_response_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // And the matching spec still loads the intact file.
        assert_eq!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Loaded(vec![(VerdictKey(1), true)])
        );
        cleanup(&spec);
    }

    #[test]
    fn write_atomic_replaces_previous_contents() {
        let spec = temp_spec("atomic");
        write_atomic(&spec.path, "first").unwrap();
        write_atomic(&spec.path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&spec.path).unwrap(), "second");
        // No temp litter left behind.
        let residue: Vec<_> = std::fs::read_dir(spec.path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(residue.is_empty(), "temp files must be renamed away");
        cleanup(&spec);
    }
}
