//! Versioned on-disk snapshots for the response and verdict caches.
//!
//! Both pool caches are pure content-addressed maps — responses are a deterministic
//! function of `(case, samples, temperature, model, seed)` and verdicts of
//! `(case, response, CheckConfig)` — so their contents can be spilled to disk and
//! reloaded by a later process without changing any result.  This module is the
//! "cache persistence & warmup" layer: repeated benchmark runs against the same
//! [`CACHE_DIR_ENV`] directory skip already-resolved cases entirely.
//!
//! ## Snapshot format
//!
//! A snapshot is a single JSON document (vendored `serde_json`) with two parts:
//!
//! * a [`SnapshotHeader`] carrying the format version, the cache kind
//!   ([`RESPONSE_KIND`] or [`VERDICT_KIND`]), a hex fingerprint of the
//!   configuration the cached values depend on (service seed for responses,
//!   `svverify::CheckConfig::fingerprint()` for verdicts), and the model identity;
//! * the entries, each pairing a hex-encoded 128-bit content key with its cached
//!   value, sorted by key so `snapshot → load → snapshot` is byte-stable.
//!
//! ## Invalidation rules
//!
//! Loading **never** fails the service: every problem degrades to a cold start.
//! A snapshot is rejected (and counted in the pool's `snapshot_rejects` metric)
//! when any of the following mismatch the expectations of the loading pool:
//!
//! | check | guards against |
//! |---|---|
//! | file parses as JSON | corruption, truncated writes |
//! | `format_version` | old processes reading a future layout |
//! | `kind` | pointing a verdict pool at a response snapshot |
//! | `fingerprint` | stale seeds / changed bounded-check parameters |
//! | `model` | responses sampled by a different model |
//! | every key decodes as 128-bit hex | hand-edited or garbled entries |
//!
//! ## Atomicity
//!
//! [`write_atomic`] writes to a process-unique temporary file in the target
//! directory and renames it into place, so readers only ever observe either the
//! previous snapshot or the complete new one — never a torn write.  A crashed
//! writer leaves at worst a stale `.tmp` file behind, which later writers ignore.

use crate::cache::{CaseKey, VerdictKey};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use svmodel::Response;

/// Version stamp written into every snapshot; bump on any layout change so older
/// binaries invalidate newer snapshots (and vice versa) instead of misreading them.
/// Version 2 added the header generation counter and per-entry `gen` stamps that
/// drive age-based compaction.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// Default [`PersistSpec::compact_after`] used by `assertsolver::EvalConfig`:
/// a snapshot entry survives this many consecutive runs without a warm hit
/// before a flush drops it.  Generous on purpose — compaction is a disk-hygiene
/// mechanism, not an eviction policy (the in-memory LRU handles pressure).
pub const DEFAULT_COMPACT_AFTER_RUNS: u64 = 16;

/// Snapshot kind tag for response-cache files (repair pool).
pub const RESPONSE_KIND: &str = "response-cache";

/// Snapshot kind tag for verdict-cache files (verify pool).
pub const VERDICT_KIND: &str = "verdict-cache";

/// Environment variable naming the cache directory `assertsolver::EvalConfig`
/// persists to; when set, `evaluate_model` runs warm across process invocations.
pub const CACHE_DIR_ENV: &str = "ASSERTSOLVER_CACHE_DIR";

/// Reads the cache-directory override from the environment, if set and non-empty.
pub fn env_cache_dir() -> Option<PathBuf> {
    std::env::var(CACHE_DIR_ENV)
        .ok()
        .map(|raw| raw.trim().to_string())
        .filter(|raw| !raw.is_empty())
        .map(PathBuf::from)
}

/// Where and under what identity a pool persists its cache.
///
/// The fingerprint and model are folded into the [`SnapshotHeader`]; a pool loading
/// a snapshot whose header disagrees with its own spec falls back to a cold start.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistSpec {
    /// Snapshot file path (parent directories are created on save).
    pub path: PathBuf,
    /// Raw bytes of the configuration the cached values depend on (service seed
    /// for responses, `CheckConfig::fingerprint()` for verdicts).
    pub fingerprint: Vec<u8>,
    /// Identity of the model the cached values were computed with; verdict
    /// snapshots, being model-agnostic, conventionally use `"-"`.
    pub model: String,
    /// Age-based compaction window, in runs (snapshot generations).  At flush
    /// time a pool drops every entry that has not been warm-hit (or recomputed)
    /// for more than this many generations, counting the dropped entries in the
    /// `snapshot_compacted_entries` metric.  `0` disables compaction (the
    /// default): every loaded entry is carried forward forever.
    pub compact_after: u64,
}

impl PersistSpec {
    /// Convenience constructor (compaction disabled).
    pub fn new(path: impl Into<PathBuf>, fingerprint: &[u8], model: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            fingerprint: fingerprint.to_vec(),
            model: model.into(),
            compact_after: 0,
        }
    }

    /// Returns the spec with age-based compaction enabled: entries not
    /// warm-hit for more than `runs` snapshot generations are dropped at flush.
    pub fn with_compaction(mut self, runs: u64) -> Self {
        self.compact_after = runs;
        self
    }
}

/// The identity block at the top of every snapshot file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Layout version; see [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Cache kind: [`RESPONSE_KIND`] or [`VERDICT_KIND`].
    pub kind: String,
    /// Lower-hex encoding of the configuration fingerprint bytes.
    pub fingerprint: String,
    /// Model identity the cached values were computed with.
    pub model: String,
    /// Monotonic run counter: each flush writes `loaded generation + 1`.
    /// Entries carry the generation they were last useful in, and age-based
    /// compaction drops entries more than [`PersistSpec::compact_after`] runs
    /// behind.  Informational for identity purposes — [`SnapshotHeader::mismatch`]
    /// deliberately ignores it, since two valid snapshots of one cache differ
    /// only by generation.
    pub generation: u64,
}

impl SnapshotHeader {
    /// The header a pool with the given spec expects (and writes).
    ///
    /// `generation` starts at 0 here; writers override it with the actual run
    /// counter, and readers ignore it when matching.
    pub fn expected(kind: &str, spec: &PersistSpec) -> Self {
        Self {
            format_version: SNAPSHOT_FORMAT_VERSION,
            kind: kind.to_string(),
            fingerprint: hex(&spec.fingerprint),
            model: spec.model.clone(),
            generation: 0,
        }
    }

    /// Returns the first reason this header does not match `expected`, if any.
    /// The [`SnapshotHeader::generation`] counter is not an identity field and
    /// is never compared.
    pub fn mismatch(&self, expected: &Self) -> Option<String> {
        if self.format_version != expected.format_version {
            return Some(format!(
                "format version {} (expected {})",
                self.format_version, expected.format_version
            ));
        }
        if self.kind != expected.kind {
            return Some(format!(
                "kind {:?} (expected {:?})",
                self.kind, expected.kind
            ));
        }
        if self.fingerprint != expected.fingerprint {
            return Some("configuration fingerprint mismatch".to_string());
        }
        if self.model != expected.model {
            return Some(format!(
                "model {:?} (expected {:?})",
                self.model, expected.model
            ));
        }
        None
    }
}

/// FNV-1a/64 of arbitrary bytes.
///
/// The shared short-hash helper for snapshot-adjacent naming and identity (e.g.
/// collision-proof snapshot file names, protocol-keyed reference files) so call
/// sites don't each hand-roll the constants.  Not a cache key — the caches use
/// the 128-bit variant in [`crate::cache`].
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Lower-hex encoding of arbitrary bytes (used for header fingerprints).
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Encodes a 128-bit content key as fixed-width lower hex.
pub fn encode_key(raw: u128) -> String {
    format!("{raw:032x}")
}

/// Decodes a key written by [`encode_key`]; `None` on any malformed input.
///
/// Only the canonical form is accepted — exactly 32 lower-hex digits — so
/// non-canonical spellings `from_str_radix` would tolerate (a leading `+`,
/// uppercase digits) are rejected, keeping load → save byte-stable.
pub fn decode_key(text: &str) -> Option<u128> {
    if text.len() != 32
        || !text
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(text, 16).ok()
}

/// One persisted response-cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEntry {
    /// Hex-encoded [`CaseKey`].
    pub key: String,
    /// Snapshot generation this entry was last useful in (warm-hit or computed);
    /// see [`SnapshotHeader::generation`].
    pub gen: u64,
    /// The cached response set, in sampling order.
    pub responses: Vec<Response>,
}

/// On-disk form of a repair pool's response cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseSnapshot {
    /// Identity block; checked before any entry is loaded.
    pub header: SnapshotHeader,
    /// Entries sorted by key.
    pub entries: Vec<ResponseEntry>,
}

/// One persisted verdict-cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictEntry {
    /// Hex-encoded [`VerdictKey`].
    pub key: String,
    /// Snapshot generation this entry was last useful in (warm-hit or computed);
    /// see [`SnapshotHeader::generation`].
    pub gen: u64,
    /// The cached verdict.
    pub verdict: bool,
}

/// On-disk form of a verify pool's verdict cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictSnapshot {
    /// Identity block; checked before any entry is loaded.
    pub header: SnapshotHeader,
    /// Entries sorted by key.
    pub entries: Vec<VerdictEntry>,
}

/// Outcome of attempting to load a snapshot.
///
/// `Missing` and `Rejected` both mean "cold start" — the distinction only matters
/// for metrics (`snapshot_rejects`) and diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotLoad<T> {
    /// The snapshot matched and its entries were decoded.
    Loaded(T),
    /// No snapshot file exists yet (the normal first-run case).
    Missing,
    /// A file exists but is corrupt, truncated, or carries a mismatched header;
    /// the string says why.  The pool starts cold.
    Rejected(String),
}

fn read_snapshot<T: Deserialize>(path: &Path) -> SnapshotLoad<T> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(err) => return SnapshotLoad::Rejected(format!("unreadable snapshot: {err}")),
    };
    match serde_json::from_str(&text) {
        Ok(snapshot) => SnapshotLoad::Loaded(snapshot),
        Err(err) => SnapshotLoad::Rejected(format!("unparseable snapshot: {err}")),
    }
}

/// A successfully loaded response snapshot: the run counter plus the aged
/// entries (`(key, responses, last_useful_generation)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseLoad {
    /// The snapshot's [`SnapshotHeader::generation`].
    pub generation: u64,
    /// Entries with the generation each was last useful in.
    pub entries: Vec<(CaseKey, Arc<Vec<Response>>, u64)>,
}

/// A successfully loaded verdict snapshot: the run counter plus the aged
/// entries (`(key, verdict, last_useful_generation)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictLoad {
    /// The snapshot's [`SnapshotHeader::generation`].
    pub generation: u64,
    /// Entries with the generation each was last useful in.
    pub entries: Vec<(VerdictKey, bool, u64)>,
}

/// Loads a response snapshot, validating the header against `spec`.
///
/// Every failure mode — missing file, corrupt JSON, version/kind/fingerprint/model
/// mismatch, malformed key — degrades to a cold start; nothing panics or errors.
pub fn load_response_snapshot(spec: &PersistSpec) -> SnapshotLoad<ResponseLoad> {
    let snapshot: ResponseSnapshot = match read_snapshot(&spec.path) {
        SnapshotLoad::Loaded(snapshot) => snapshot,
        SnapshotLoad::Missing => return SnapshotLoad::Missing,
        SnapshotLoad::Rejected(reason) => return SnapshotLoad::Rejected(reason),
    };
    if let Some(reason) = snapshot
        .header
        .mismatch(&SnapshotHeader::expected(RESPONSE_KIND, spec))
    {
        return SnapshotLoad::Rejected(reason);
    }
    let mut entries = Vec::with_capacity(snapshot.entries.len());
    for entry in snapshot.entries {
        let Some(raw) = decode_key(&entry.key) else {
            return SnapshotLoad::Rejected(format!("malformed key {:?}", entry.key));
        };
        entries.push((CaseKey(raw), Arc::new(entry.responses), entry.gen));
    }
    SnapshotLoad::Loaded(ResponseLoad {
        generation: snapshot.header.generation,
        entries,
    })
}

/// Loads a verdict snapshot, validating the header against `spec`.
///
/// Same degradation contract as [`load_response_snapshot`].
pub fn load_verdict_snapshot(spec: &PersistSpec) -> SnapshotLoad<VerdictLoad> {
    let snapshot: VerdictSnapshot = match read_snapshot(&spec.path) {
        SnapshotLoad::Loaded(snapshot) => snapshot,
        SnapshotLoad::Missing => return SnapshotLoad::Missing,
        SnapshotLoad::Rejected(reason) => return SnapshotLoad::Rejected(reason),
    };
    if let Some(reason) = snapshot
        .header
        .mismatch(&SnapshotHeader::expected(VERDICT_KIND, spec))
    {
        return SnapshotLoad::Rejected(reason);
    }
    let mut entries = Vec::with_capacity(snapshot.entries.len());
    for entry in snapshot.entries {
        let Some(raw) = decode_key(&entry.key) else {
            return SnapshotLoad::Rejected(format!("malformed key {:?}", entry.key));
        };
        entries.push((VerdictKey(raw), entry.verdict, entry.gen));
    }
    SnapshotLoad::Loaded(VerdictLoad {
        generation: snapshot.header.generation,
        entries,
    })
}

/// Saves a response snapshot atomically; returns the number of entries written.
///
/// Convenience wrapper over [`save_response_snapshot_aged`] that stamps the file
/// as generation 1 with every entry current — the shape of a freshly computed
/// cache with no history.
pub fn save_response_snapshot(
    spec: &PersistSpec,
    entries: Vec<(CaseKey, Arc<Vec<Response>>)>,
) -> io::Result<usize> {
    let aged = entries
        .into_iter()
        .map(|(key, responses)| (key, responses, 1))
        .collect();
    save_response_snapshot_aged(spec, 1, aged)
}

/// Saves a response snapshot atomically under an explicit run counter, with
/// per-entry `last useful` generations; returns the number of entries written.
///
/// Entries are sorted by key before writing, so saving, loading and saving again
/// (at the same generation) produces byte-identical files regardless of cache
/// insertion order or worker count.
pub fn save_response_snapshot_aged(
    spec: &PersistSpec,
    generation: u64,
    mut entries: Vec<(CaseKey, Arc<Vec<Response>>, u64)>,
) -> io::Result<usize> {
    entries.sort_by_key(|(key, ..)| *key);
    let snapshot = ResponseSnapshot {
        header: SnapshotHeader {
            generation,
            ..SnapshotHeader::expected(RESPONSE_KIND, spec)
        },
        entries: entries
            .into_iter()
            .map(|(key, responses, gen)| ResponseEntry {
                key: encode_key(key.0),
                gen,
                responses: (*responses).clone(),
            })
            .collect(),
    };
    let count = snapshot.entries.len();
    let json = serde_json::to_string(&snapshot)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    write_atomic(&spec.path, &json)?;
    Ok(count)
}

/// Saves a verdict snapshot atomically; returns the number of entries written.
///
/// Convenience wrapper over [`save_verdict_snapshot_aged`] that stamps the file
/// as generation 1 with every entry current.
///
/// ```
/// use svserve::persist::{
///     load_verdict_snapshot, save_verdict_snapshot, PersistSpec, SnapshotLoad, VerdictLoad,
/// };
/// use svserve::VerdictKey;
///
/// let dir = std::env::temp_dir().join(format!("svserve-doc-{}", std::process::id()));
/// let spec = PersistSpec::new(dir.join("verdicts.json"), b"check-config", "-");
/// save_verdict_snapshot(&spec, vec![(VerdictKey(7), true), (VerdictKey(3), false)]).unwrap();
/// assert_eq!(
///     load_verdict_snapshot(&spec),
///     SnapshotLoad::Loaded(VerdictLoad {
///         generation: 1,
///         entries: vec![(VerdictKey(3), false, 1), (VerdictKey(7), true, 1)],
///     }),
/// );
/// // A spec with a different fingerprint rejects the file instead of loading it.
/// let stale = PersistSpec::new(spec.path.clone(), b"other-config", "-");
/// assert!(matches!(load_verdict_snapshot(&stale), SnapshotLoad::Rejected(_)));
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub fn save_verdict_snapshot(
    spec: &PersistSpec,
    entries: Vec<(VerdictKey, bool)>,
) -> io::Result<usize> {
    let aged = entries
        .into_iter()
        .map(|(key, verdict)| (key, verdict, 1))
        .collect();
    save_verdict_snapshot_aged(spec, 1, aged)
}

/// Saves a verdict snapshot atomically under an explicit run counter, with
/// per-entry `last useful` generations; returns the number of entries written.
///
/// Same byte-stability contract as [`save_response_snapshot_aged`].
pub fn save_verdict_snapshot_aged(
    spec: &PersistSpec,
    generation: u64,
    mut entries: Vec<(VerdictKey, bool, u64)>,
) -> io::Result<usize> {
    entries.sort_by_key(|(key, ..)| *key);
    let snapshot = VerdictSnapshot {
        header: SnapshotHeader {
            generation,
            ..SnapshotHeader::expected(VERDICT_KIND, spec)
        },
        entries: entries
            .into_iter()
            .map(|(key, verdict, gen)| VerdictEntry {
                key: encode_key(key.0),
                gen,
                verdict,
            })
            .collect(),
    };
    let count = snapshot.entries.len();
    let json = serde_json::to_string(&snapshot)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
    write_atomic(&spec.path, &json)?;
    Ok(count)
}

/// Applies the aging + compaction step pools run at flush time.
///
/// `entries` is the aged cache export (`(key, value, last_useful_gen, touched)`);
/// `next_generation` is the counter the new snapshot will be written under.
/// Touched entries (warm-hit or computed this run) are re-stamped to
/// `next_generation`; untouched entries keep their old stamp (clamped to the
/// loaded generation, so a hand-edited future stamp cannot pin an entry
/// forever).  With `compact_after > 0`, entries more than that many generations
/// behind are dropped.  Returns the surviving entries plus the dropped count.
pub fn age_entries<K, V>(
    entries: Vec<(K, V, u64, bool)>,
    loaded_generation: u64,
    next_generation: u64,
    compact_after: u64,
) -> (Vec<(K, V, u64)>, usize) {
    let mut kept = Vec::with_capacity(entries.len());
    let mut compacted = 0usize;
    for (key, value, gen, touched) in entries {
        let gen = if touched {
            next_generation
        } else {
            gen.min(loaded_generation)
        };
        if compact_after > 0 && next_generation.saturating_sub(gen) > compact_after {
            compacted += 1;
        } else {
            kept.push((key, value, gen));
        }
    }
    (kept, compacted)
}

/// Writes `contents` to `path` atomically: temp file in the same directory, then
/// rename.  Creates parent directories as needed.  Readers never observe a torn
/// write because the rename either fully replaces the old file or leaves it alone.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(parent) = parent {
        std::fs::create_dir_all(parent)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            )
        })?
        .to_string_lossy()
        .into_owned();
    // The temp name is unique per write (pid + global counter) so concurrent
    // writers — including two pools in one process flushing a shared snapshot —
    // cannot clobber each other's half-written file; the final rename still races
    // benignly (last complete snapshot wins).
    static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}.{seq}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(err) => {
            let _ = std::fs::remove_file(&tmp);
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spec(tag: &str) -> PersistSpec {
        let dir =
            std::env::temp_dir().join(format!("svserve-persist-unit-{}-{tag}", std::process::id()));
        PersistSpec::new(dir.join("snap.json"), b"fp", "model-a")
    }

    fn cleanup(spec: &PersistSpec) {
        if let Some(dir) = spec.path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    fn response(line: u32) -> Response {
        Response {
            bug_line_number: line,
            buggy_line: format!("buggy {line}"),
            fixed_line: format!("fixed {line}"),
            cot: if line.is_multiple_of(2) {
                Some(format!("because {line}"))
            } else {
                None
            },
        }
    }

    #[test]
    fn key_codec_round_trips_and_rejects_garbage() {
        for raw in [0u128, 1, u128::MAX, 0xdead_beef] {
            assert_eq!(decode_key(&encode_key(raw)), Some(raw));
        }
        assert_eq!(decode_key(""), None);
        assert_eq!(decode_key("zz"), None);
        assert_eq!(decode_key(&"f".repeat(33)), None);
        // Non-canonical but parseable widths are rejected too (fixed 32 chars).
        assert_eq!(decode_key("ff"), None);
        // Only canonical lower-hex digits: no sign, no uppercase, no whitespace.
        assert_eq!(decode_key("+0000000000000000000000000000001"), None);
        assert_eq!(decode_key(&"F".repeat(32)), None);
        assert_eq!(decode_key(" 000000000000000000000000000000f"), None);
    }

    #[test]
    fn response_snapshot_round_trips_with_recency_independent_bytes() {
        let spec = temp_spec("resp-roundtrip");
        let entries = vec![
            (CaseKey(9), Arc::new(vec![response(1), response(2)])),
            (CaseKey(2), Arc::new(vec![])),
        ];
        save_response_snapshot(&spec, entries.clone()).unwrap();
        let first_bytes = std::fs::read(&spec.path).unwrap();
        let SnapshotLoad::Loaded(loaded) = load_response_snapshot(&spec) else {
            panic!("snapshot must load");
        };
        assert_eq!(loaded.generation, 1);
        // Loaded sorted by key, every entry stamped with the file generation.
        assert_eq!(loaded.entries[0].0, CaseKey(2));
        assert_eq!(loaded.entries[1].0, CaseKey(9));
        assert_eq!(*loaded.entries[1].1, vec![response(1), response(2)]);
        assert!(loaded.entries.iter().all(|(.., gen)| *gen == 1));
        // Saving what was loaded at the same generation reproduces the file
        // byte for byte.
        save_response_snapshot_aged(&spec, loaded.generation, loaded.entries).unwrap();
        assert_eq!(std::fs::read(&spec.path).unwrap(), first_bytes);
        cleanup(&spec);
    }

    #[test]
    fn age_entries_restamps_touched_and_drops_stale() {
        // Generation 5 snapshot flushing as generation 6, K = 3.
        let entries = vec![
            ("touched-old", 'a', 1, true),   // re-stamped to 6
            ("idle-fresh", 'b', 5, false),   // kept at 5 (6-5 = 1 <= 3)
            ("idle-edge", 'c', 3, false),    // kept at 3 (6-3 = 3 <= 3)
            ("idle-stale", 'd', 2, false),   // dropped (6-2 = 4 > 3)
            ("idle-future", 'e', 99, false), // clamped to 5, kept
        ];
        let (kept, compacted) = age_entries(entries.clone(), 5, 6, 3);
        assert_eq!(compacted, 1);
        let kept: std::collections::HashMap<&str, u64> =
            kept.into_iter().map(|(k, _, gen)| (k, gen)).collect();
        assert_eq!(kept["touched-old"], 6);
        assert_eq!(kept["idle-fresh"], 5);
        assert_eq!(kept["idle-edge"], 3);
        assert_eq!(kept["idle-future"], 5);
        assert!(!kept.contains_key("idle-stale"));
        // compact_after = 0 disables compaction entirely.
        let (kept, compacted) = age_entries(entries, 5, 6, 0);
        assert_eq!(compacted, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn missing_corrupt_and_mismatched_snapshots_degrade_to_cold_start() {
        let spec = temp_spec("degrade");
        assert_eq!(load_verdict_snapshot(&spec), SnapshotLoad::Missing);

        // Corrupt bytes.
        std::fs::create_dir_all(spec.path.parent().unwrap()).unwrap();
        std::fs::write(&spec.path, "{ not json at all").unwrap();
        assert!(matches!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // Truncated valid JSON.
        save_verdict_snapshot(&spec, vec![(VerdictKey(1), true)]).unwrap();
        let full = std::fs::read_to_string(&spec.path).unwrap();
        std::fs::write(&spec.path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // Version mismatch.
        let bumped = full.replace(
            &format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION}"),
            &format!("\"format_version\":{}", SNAPSHOT_FORMAT_VERSION + 1),
        );
        assert_ne!(bumped, full, "version field must be present to rewrite");
        std::fs::write(&spec.path, &bumped).unwrap();
        let SnapshotLoad::Rejected(reason) = load_verdict_snapshot(&spec) else {
            panic!("future format version must be rejected");
        };
        assert!(
            reason.contains("format version"),
            "unexpected reason {reason}"
        );

        // Fingerprint and model mismatches.
        std::fs::write(&spec.path, &full).unwrap();
        let other_fp = PersistSpec {
            fingerprint: b"other".to_vec(),
            ..spec.clone()
        };
        assert!(matches!(
            load_verdict_snapshot(&other_fp),
            SnapshotLoad::Rejected(_)
        ));
        let other_model = PersistSpec {
            model: "model-b".into(),
            ..spec.clone()
        };
        assert!(matches!(
            load_verdict_snapshot(&other_model),
            SnapshotLoad::Rejected(_)
        ));

        // Kind confusion: a verdict file is not a response snapshot.
        std::fs::write(&spec.path, &full).unwrap();
        assert!(matches!(
            load_response_snapshot(&spec),
            SnapshotLoad::Rejected(_)
        ));

        // And the matching spec still loads the intact file.
        assert_eq!(
            load_verdict_snapshot(&spec),
            SnapshotLoad::Loaded(VerdictLoad {
                generation: 1,
                entries: vec![(VerdictKey(1), true, 1)],
            })
        );
        cleanup(&spec);
    }

    #[test]
    fn write_atomic_replaces_previous_contents() {
        let spec = temp_spec("atomic");
        write_atomic(&spec.path, "first").unwrap();
        write_atomic(&spec.path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&spec.path).unwrap(), "second");
        // No temp litter left behind.
        let residue: Vec<_> = std::fs::read_dir(spec.path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(residue.is_empty(), "temp files must be renamed away");
        cleanup(&spec);
    }
}
