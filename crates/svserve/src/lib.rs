//! # svserve — a concurrent, sharded repair service over any [`svmodel::RepairModel`]
//!
//! The paper evaluates AssertSolver one case at a time; this crate is the serving
//! harness that turns a repair model into a system that can absorb heavy traffic:
//!
//! * **Sharded worker pool** — N worker threads, each owning one bounded queue shard
//!   ([`queue`]); submitters block when a shard is full (backpressure) instead of
//!   growing memory without bound.
//! * **Micro-batching** — workers drain up to [`ServiceConfig::max_batch`] jobs per
//!   wake-up, amortizing queue synchronization across model invocations
//!   ([`ServiceMetrics::mean_batch_size`] shows the effect).
//! * **Content-addressed response cache** — answers are cached under a 128-bit hash
//!   of `(spec, buggy source, failure log, samples, temperature)` with LRU eviction
//!   and hit/miss counters ([`cache`]).
//! * **Metrics** — [`ServiceMetrics`] snapshots throughput, per-stage latency
//!   (queue wait / cache lookup / solve), queue depth and cache hit rate.
//! * **Determinism** — sampler seeds derive from the content hash plus the service
//!   seed, never from arrival order or worker identity, so the same workload yields
//!   byte-identical responses at any worker count.
//! * **Verification offload** — a second sharded pool ([`verify`]) built from the
//!   same recipe judges `(case, candidate response)` pairs on dedicated workers,
//!   with a content-addressed verdict cache keyed by
//!   `hash(case, response, checker config)`; sampling and verification pipeline
//!   through the two pools concurrently in `assertsolver::evaluate_model`.
//! * **Cache persistence & warm start** — both caches can spill to versioned
//!   on-disk snapshots ([`persist`]) that are preloaded at pool start, so repeated
//!   runs replay responses and verdicts from disk instead of recomputing them;
//!   corrupt or mismatched snapshots degrade to a cold start, never an error.
//!   Snapshots carry a generation counter, and entries that go unused for
//!   [`PersistSpec::compact_after`] runs are compacted away at flush.
//! * **Multi-model routing** — a [`route::ModelRouter`] serves N named backends
//!   (e.g. base/SFT/DPO checkpoints plus baseline surrogates), each with its own
//!   pool and cache, behind one submit/await surface; a [`RoutePolicy`] places
//!   each request (pinned, deterministic A/B split, or cheapest-first escalation
//!   with verification-failure re-submits and a full attempt trail).
//! * **Async session runtime** — a hand-rolled, dependency-free executor
//!   ([`rt`]) plus a [`session::SessionEngine`] that drives each repair session
//!   as a waker-scheduled state machine (submit → sampled → verify →
//!   accept/escalate → done), so thousands of in-flight sessions multiplex over
//!   a handful of driver threads instead of parking one OS thread per waiter.
//!   Tickets are `Future`s, pool submission is non-blocking
//!   (`submit_async`), and per-backend admission control sheds overload with a
//!   deterministic [`SubmitError::Busy`].
//! * **Structured session journal** — a typed-event observability layer
//!   ([`journal`]): span hooks on the pools, the router and the session engine
//!   record phases, rung attempts, verdict tallies and terminal outcomes into a
//!   sharded sink with logical timestamps, rendered as a checksummed JSONL
//!   artifact whose bytes are deterministic at any driver/worker count — a
//!   replayable repro artifact, not just a log.  Off by default; the hot path
//!   pays one branch.
//! * **Distributed shard fabric** — a versioned, checksummed, length-capped
//!   frame protocol ([`wire`]) with loopback and unix-socket transports, a
//!   [`ShardFleet`] client placing requests by content hash (per-shard caches
//!   stay disjoint; results are byte-identical to in-process at any shard
//!   count) and a [`ShardServer`] / `shard-serve` binary hosting a service
//!   behind a socket.  `Busy` and every wire failure degrade to counted
//!   outcomes, never a client panic or hang.
//!
//! ## Quick example
//!
//! ```
//! use svserve::{serve_scoped, RepairRequest, ServiceConfig};
//! use svmodel::{AssertSolverModel, CaseInput};
//!
//! let model = AssertSolverModel::base(1);
//! let case = CaseInput {
//!     spec: "spec".into(),
//!     buggy_source: "module m(); endmodule".into(),
//!     logs: String::new(),
//! };
//! let outcomes = serve_scoped(&model, ServiceConfig::default(), |service| {
//!     service.solve_all(vec![RepairRequest::new(case, 3, 0.2)])
//! });
//! assert_eq!(outcomes[0].responses.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod metrics;
pub mod persist;
pub mod queue;
pub mod route;
pub mod rt;
pub mod service;
pub mod session;
pub(crate) mod sync;
pub mod telemetry;
mod ticket;
pub mod trace;
pub mod verify;
pub mod wire;

pub use cache::{case_key, verdict_key, CaseKey, LruCache, VerdictKey};
pub use journal::{
    env_journal_dir, logical_tick, parse_journal, render_journal, write_journal, JournalCounters,
    JournalEvent, JournalFooter, JournalHeader, JournalMode, JournalRecord, JournalSink,
    JournalSpec, ParsedJournal, SessionEnd, SessionSpan, SpanHandle, Tracer, TracerHandle,
    JOURNAL_DIR_ENV, JOURNAL_FORMAT_VERSION, JOURNAL_KIND, TERMINAL_SEQ,
};
pub use metrics::{indent_block, render_block, ServiceMetrics, VerifyMetrics};
pub use persist::{
    env_cache_dir, PersistSpec, SnapshotHeader, SnapshotLoad, CACHE_DIR_ENV,
    DEFAULT_COMPACT_AFTER_RUNS, SNAPSHOT_FORMAT_VERSION,
};
pub use queue::{ServiceClosed, SubmitError};
pub use route::{
    ab_arm, BackendMetrics, BackendSpec, EscalationJudge, EscalationMetrics, JudgeReport,
    ModelRouter, RouteAttempt, RouteMetrics, RouteOutcome, RoutePolicy, RouteSubmitFuture,
    RouteTicket, RouterConfig,
};
pub use rt::{block_on, env_drivers, Runtime, TaskHandle, DRIVERS_ENV};
pub use service::{
    serve_scoped, RepairOutcome, RepairRequest, RepairService, RepairTicket, ScopedService,
    ServiceConfig, SubmitFuture,
};
pub use session::{
    SessionConfig, SessionEngine, SessionHandle, SessionMetrics, SessionMonitor, SessionOutcome,
    SessionPhase, DEFAULT_DRIVERS,
};
pub use telemetry::{
    env_profile_dir, env_telemetry, env_window_width, percentile_from_buckets, ratio,
    CollapsedProfile, Metric, MetricClass, MetricKind, MetricSnapshot, MetricsRegistry,
    RegistrySnapshot, TelemetryHandle, TelemetryWindows, WindowBucketSnapshot, WindowSnapshot,
    DEFAULT_WINDOW_WIDTH, HISTOGRAM_BUCKETS, PROFILE_DIR_ENV, TELEMETRY_ENV, WINDOW_RING_BUCKETS,
    WINDOW_WIDTH_ENV,
};
pub use trace::{
    env_trace, stage, TraceContext, TraceForest, TraceHandle, TraceSessionSummary, TraceSpan,
    TRACE_ENV,
};
pub use verify::{
    env_verify_workers, verify_scoped, ResponseJudge, ScopedVerifier, VerdictOutcome, VerifyConfig,
    VerifyPool, VerifyRequest, VerifySubmitFuture, VerifyTicket, VERIFY_WORKERS_ENV,
};
pub use wire::{
    decode_frame, encode_frame, env_shard_sockets, read_frame, shard_for_key, write_frame,
    FleetMetrics, FleetStats, Frame, FrameError, LoopbackTransport, RemoteShard, ShardFleet,
    ShardServer, ShardStats, ShardWindow, Transport, UnixTransport, WireError, WireOutcome,
    MAX_FRAME_LEN, MIN_WIRE_FORMAT_VERSION, SHARD_SOCKETS_ENV, WIRE_FORMAT_VERSION,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::ServiceConfig>();
        assert_send_sync::<super::ServiceMetrics>();
        assert_send_sync::<super::RepairRequest>();
        assert_send_sync::<super::RepairOutcome>();
        assert_send_sync::<super::RepairTicket>();
        assert_send_sync::<super::VerifyConfig>();
        assert_send_sync::<super::VerifyMetrics>();
        assert_send_sync::<super::VerifyRequest<String>>();
        assert_send_sync::<super::VerdictOutcome>();
        assert_send_sync::<super::VerifyTicket>();
        assert_send_sync::<super::TracerHandle>();
        assert_send_sync::<super::TelemetryHandle>();
        assert_send_sync::<super::MetricsRegistry>();
        assert_send_sync::<super::RegistrySnapshot>();
        assert_send_sync::<super::JournalSink>();
        assert_send_sync::<super::SessionSpan>();
        assert_send_sync::<super::SpanHandle>();
        assert_send_sync::<super::TraceHandle>();
        assert_send_sync::<super::TraceSpan>();
        assert_send_sync::<super::TraceForest>();
        assert_send_sync::<super::TelemetryWindows>();
        assert_send_sync::<super::WindowSnapshot>();
    }
}
