//! Deterministic distributed tracing: content-derived trace trees that are
//! byte-identical at any driver/worker/shard count.
//!
//! Conventional tracers mint span ids from wall clocks or randomness, which
//! makes two runs of the same workload incomparable.  Here every id is a pure
//! function of request content:
//!
//! * a **trace id** is `splitmix64(CaseKey.fold64() ^ TRACE_SALT ^ salt)` —
//!   the registered salt lets two experiments over the same corpus keep
//!   disjoint id spaces;
//! * a **span id** is `splitmix64(parent_span_id ^ fnv64(label))` — the tree
//!   *shape* is part of the contract, so the same request produces the same
//!   tree whether it was served in-process, over loopback, or by a remote
//!   shard;
//! * a span's **start** is a [`logical_tick`] of `(trace_id, stage seq)`,
//!   never a wall clock.
//!
//! Wall-clock durations ride along in [`TraceSpan::wall_ns`] as **volatile**
//! payload: they power `svtrace --slowest` and `--flame`, but are excluded
//! from [`TraceForest::render_deterministic`], the byte-compared projection.
//!
//! Cross-process propagation: the wire layer's `SubmitTraced` frame carries a
//! [`TraceContext`], the shard emits its spans under the remote parent, and a
//! `TraceReply` returns them for [`TraceForest`] reconstruction — the merged
//! tree is byte-identical to the tree an in-process run produces, because
//! every deterministic field derives from content on both sides.

use crate::cache::CaseKey;
use crate::journal::logical_tick;
use crate::persist::fnv64;
use crate::service::splitmix64;
use crate::sync::lock_recover;
use crate::telemetry::CollapsedProfile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Environment knob enabling tracing in `assertsolver::EvalConfig`-driven
/// runs: `1`/`on`/`true`/`yes` enable, `0`/`off`/`false`/unset disable.
pub const TRACE_ENV: &str = "ASSERTSOLVER_TRACE";

/// Salt folded into every trace id; distinct from the A/B and shard-placement
/// salts so trace identity is an independent hash dimension.
const TRACE_SALT: u64 = 0x7CA5_E11A_D157_ACED;

/// Stage sequence numbers: fixed per span name so logical start ticks — and
/// therefore the deterministic render order — are part of the protocol, not
/// an accident of scheduling.
pub mod stage {
    /// The root session span.
    pub const SESSION: u32 = 0;
    /// Queue admission (submit accepted by the pool or the wire).
    pub const SUBMIT: u32 = 1;
    /// Model sampling (served locally or by a remote shard).
    pub const SAMPLE: u32 = 2;
    /// Candidate fan-out into the verify pool.
    pub const VERIFY: u32 = 3;
    /// Verdict collection and tallying.
    pub const EVALUATE: u32 = 4;
    /// First escalation rung; rung `n` uses `RUNG_BASE + n`.
    pub const RUNG_BASE: u32 = 16;
}

/// Reads [`TRACE_ENV`], warning (once per call) on unrecognized values
/// instead of silently ignoring them.
pub fn env_trace() -> bool {
    match std::env::var(TRACE_ENV) {
        Err(_) => false,
        Ok(raw) => {
            let value = raw.trim();
            if value.is_empty() {
                return false;
            }
            if ["1", "on", "true", "yes"]
                .iter()
                .any(|v| value.eq_ignore_ascii_case(v))
            {
                return true;
            }
            if !["0", "off", "false", "no"]
                .iter()
                .any(|v| value.eq_ignore_ascii_case(v))
            {
                eprintln!("warning: {TRACE_ENV}={value:?} is not on/off; tracing stays off");
            }
            false
        }
    }
}

/// The propagated identity of one span: enough to adopt a remote parent.
///
/// Contexts cross process boundaries verbatim (the `SubmitTraced` wire frame),
/// so a shard that has never seen the driver's salt still derives child span
/// ids that slot into the driver's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// The trace this span belongs to (one trace per repair session).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span's id; `None` for the root.
    pub parent_span_id: Option<u64>,
}

impl TraceContext {
    /// The root context for a request: ids derive from the content hash and
    /// the registered salt, never from wall clock or randomness.
    pub fn root(key: CaseKey, salt: u64) -> Self {
        let trace_id = splitmix64(key.fold64() ^ TRACE_SALT ^ salt);
        Self {
            trace_id,
            span_id: trace_id,
            parent_span_id: None,
        }
    }

    /// A child context under this span: the child id hashes the parent id
    /// with the stage label, so the same label under the same parent is the
    /// same span on every machine.
    pub fn child(&self, label: &str) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ fnv64(label.as_bytes())),
            parent_span_id: Some(self.span_id),
        }
    }
}

/// One completed span.
///
/// `trace`/`span`/`parent`/`name`/`start`/`units` are **deterministic** —
/// pure functions of request content and tree shape; `wall_ns` is the
/// **volatile** wall-clock payload and is excluded from the byte-compared
/// projection ([`TraceForest::render_deterministic`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id; `None` for the root.
    pub parent: Option<u64>,
    /// Stage name (`"session"`, `"submit"`, `"sample"`, …).
    pub name: String,
    /// Logical start tick: [`logical_tick`] of `(trace, stage seq)`.
    pub start: u64,
    /// Content-derived magnitude (samples drawn, candidates judged, …).
    pub units: u64,
    /// Wall-clock duration in nanoseconds (volatile diagnostic).
    pub wall_ns: u64,
}

impl TraceSpan {
    /// Builds the span for `ctx` at stage `seq`.
    pub fn new(
        ctx: &TraceContext,
        name: impl Into<String>,
        seq: u32,
        units: u64,
        wall_ns: u64,
    ) -> Self {
        Self {
            trace: ctx.trace_id,
            span: ctx.span_id,
            parent: ctx.parent_span_id,
            name: name.into(),
            start: logical_tick(ctx.trace_id, seq),
            units,
            wall_ns,
        }
    }

    /// The deterministic projection of this span: every field except the
    /// wall clock, rendered byte-stably.
    pub fn deterministic_line(&self) -> String {
        let parent = match self.parent {
            Some(parent) => format!("{parent:016x}"),
            None => "-".to_string(),
        };
        format!(
            "trace={:016x} span={:016x} parent={parent} start={} units={} name={}",
            self.trace, self.span, self.start, self.units, self.name
        )
    }
}

struct TraceCore {
    salt: u64,
    spans: Mutex<Vec<TraceSpan>>,
}

/// The config-threaded tracing switch: `off()` by default, one branch per
/// hot-path hook, pointer-identity equality (the `TracerHandle` recipe).
///
/// The handle owns the registered salt (folded into every trace id) and the
/// span sink; [`TraceHandle::drain`] takes the collected spans in
/// deterministic order.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<TraceCore>>);

impl TraceHandle {
    /// The disabled handle: every hook short-circuits on one branch.
    pub fn off() -> Self {
        Self(None)
    }

    /// An enabled handle with `salt` folded into every trace id.
    pub fn new(salt: u64) -> Self {
        Self(Some(Arc::new(TraceCore {
            salt,
            spans: Mutex::new(Vec::new()),
        })))
    }

    /// A handle honoring [`TRACE_ENV`]: enabled with salt 0 when the knob is
    /// on, `off()` otherwise.
    pub fn from_env() -> Self {
        if env_trace() {
            Self::new(0)
        } else {
            Self::off()
        }
    }

    /// Whether tracing is enabled.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// The root context for `key`, or `None` while tracing is off.
    pub fn root(&self, key: CaseKey) -> Option<TraceContext> {
        self.0
            .as_ref()
            .map(|core| TraceContext::root(key, core.salt))
    }

    /// Records one completed span; dropped silently while tracing is off.
    pub fn record(&self, span: TraceSpan) {
        if let Some(core) = &self.0 {
            lock_recover(&core.spans).push(span);
        }
    }

    /// Merges remotely-collected spans (a shard's `TraceReply`) into the sink.
    pub fn extend(&self, spans: Vec<TraceSpan>) {
        if let Some(core) = &self.0 {
            lock_recover(&core.spans).extend(spans);
        }
    }

    /// Takes every collected span, sorted and deduplicated the same way
    /// [`TraceForest::from_spans`] sorts them — collection order (a scheduling
    /// artifact) never leaks into the output.
    pub fn drain(&self) -> Vec<TraceSpan> {
        let spans = match &self.0 {
            Some(core) => std::mem::take(&mut *lock_recover(&core.spans)),
            None => Vec::new(),
        };
        TraceForest::from_spans(spans).into_spans()
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "TraceHandle(on)"
        } else {
            "TraceHandle(off)"
        })
    }
}

impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => std::ptr::eq(Arc::as_ptr(a), Arc::as_ptr(b)),
            _ => false,
        }
    }
}

impl Eq for TraceHandle {}

/// Per-root-span summary: the numbers `svtrace --slowest` mines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSessionSummary {
    /// Trace id.
    pub trace: u64,
    /// Root span name.
    pub name: String,
    /// The root span's wall-clock duration.
    pub wall_ns: u64,
    /// Wall-clock attributed to named descendant spans.
    pub attributed_ns: u64,
    /// The root span's content-derived magnitude.
    pub units: u64,
}

impl TraceSessionSummary {
    /// Fraction of the session's wall-clock attributed to named child spans
    /// (1.0 for a zero-duration session — nothing is unaccounted for).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.attributed_ns.min(self.wall_ns) as f64 / self.wall_ns as f64
        }
    }
}

/// A reconstructed set of trace trees: spans sorted deterministically, with
/// duplicates (the same span observed by two processes) merged.
///
/// Duplicate deterministic keys arise by design in fleet runs: the driver
/// times its side of a remote `sample` stage and the shard times its own; both
/// spans share every deterministic field, so the merge keeps one span with
/// the **max** wall clock (the driver's view includes the wire, and ≥ covers
/// the shard's).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceForest {
    spans: Vec<TraceSpan>,
}

/// The deterministic identity of a span — every field except the volatile
/// wall clock.  Two processes observing the same logical span produce the
/// same key, which is what lets [`TraceForest::from_spans`] merge them.
type SpanKey = (u64, u64, u64, String, u64, Option<u64>);

impl TraceForest {
    /// Builds a forest: sorts by the deterministic key and merges duplicates.
    pub fn from_spans(spans: Vec<TraceSpan>) -> Self {
        let mut merged: BTreeMap<SpanKey, u64> = BTreeMap::new();
        for span in spans {
            let key = (
                span.trace,
                span.start,
                span.span,
                span.name,
                span.units,
                span.parent,
            );
            let wall = merged.entry(key).or_insert(0);
            *wall = (*wall).max(span.wall_ns);
        }
        let spans = merged
            .into_iter()
            .map(
                |((trace, start, span, name, units, parent), wall_ns)| TraceSpan {
                    trace,
                    span,
                    parent,
                    name,
                    start,
                    units,
                    wall_ns,
                },
            )
            .collect();
        Self { spans }
    }

    /// The spans in deterministic order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Consumes the forest, returning the sorted spans.
    pub fn into_spans(self) -> Vec<TraceSpan> {
        self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Merges another forest in (e.g. shard-journal spans into the driver's);
    /// duplicate spans keep the max wall clock.
    pub fn merged_with(self, other: TraceForest) -> TraceForest {
        let mut spans = self.spans;
        spans.extend(other.spans);
        Self::from_spans(spans)
    }

    /// Root spans (no parent, or parent absent from the set), in order.
    fn roots(&self) -> Vec<&TraceSpan> {
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.span).collect();
        self.spans
            .iter()
            .filter(|s| match s.parent {
                None => true,
                Some(parent) => !ids.contains(&parent),
            })
            .collect()
    }

    fn children_of(&self, trace: u64, span: u64) -> Vec<&TraceSpan> {
        self.spans
            .iter()
            .filter(|s| s.trace == trace && s.parent == Some(span) && s.span != span)
            .collect()
    }

    fn render_node(&self, span: &TraceSpan, depth: usize, deterministic: bool, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&span.deterministic_line());
        if !deterministic {
            out.push_str(&format!(" wall_ns={}", span.wall_ns));
        }
        out.push('\n');
        for child in self.children_of(span.trace, span.span) {
            self.render_node(child, depth + 1, deterministic, out);
        }
    }

    /// The byte-compared projection: the full tree, indented, deterministic
    /// fields only.  Identical for the same corpus at any driver/worker/shard
    /// count, warm or cold, in-process or over the wire.
    pub fn render_deterministic(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_node(root, 0, true, &mut out);
        }
        out
    }

    /// The full tree including per-span wall clocks (for humans, not for
    /// byte comparison).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in self.roots() {
            self.render_node(root, 0, false, &mut out);
        }
        out
    }

    /// Collapsed-stack projection of the wall clocks: one
    /// `root;…;span wall_ns` frame per span path (the format `svprof`,
    /// `flamegraph.pl` and `inferno` consume).  The root frame carries the
    /// session's *unattributed* residual so the profile total equals the sum
    /// of root walls.
    pub fn collapsed(&self) -> CollapsedProfile {
        let mut profile = CollapsedProfile::new();
        for root in self.roots() {
            let attributed = self.collapse_children(root, &root.name.clone(), &mut profile);
            profile.record(&root.name, root.wall_ns.saturating_sub(attributed));
        }
        profile
    }

    fn collapse_children(
        &self,
        span: &TraceSpan,
        path: &str,
        profile: &mut CollapsedProfile,
    ) -> u64 {
        let mut attributed = 0u64;
        for child in self.children_of(span.trace, span.span) {
            let child_path = format!("{path};{}", child.name);
            let nested = self.collapse_children(child, &child_path, profile);
            profile.record(&child_path, child.wall_ns.saturating_sub(nested));
            attributed = attributed.saturating_add(child.wall_ns);
        }
        attributed
    }

    /// One summary per root span, in deterministic order.
    pub fn sessions(&self) -> Vec<TraceSessionSummary> {
        self.roots()
            .iter()
            .map(|root| TraceSessionSummary {
                trace: root.trace,
                name: root.name.clone(),
                wall_ns: root.wall_ns,
                attributed_ns: self.attributed_below(root),
                units: root.units,
            })
            .collect()
    }

    fn attributed_below(&self, root: &TraceSpan) -> u64 {
        self.children_of(root.trace, root.span)
            .iter()
            .fold(0u64, |acc, child| acc.saturating_add(child.wall_ns))
    }

    /// The `n` slowest sessions by root wall-clock (ties broken by trace id,
    /// so the listing is stable).
    pub fn slowest(&self, n: usize) -> Vec<TraceSessionSummary> {
        let mut sessions = self.sessions();
        sessions.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.trace.cmp(&b.trace)));
        sessions.truncate(n);
        sessions
    }

    /// Serializes the forest as JSONL (one span per line, deterministic
    /// order) — the artifact form `svtrace --out` writes.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&serde_json::to_string(span).expect("trace spans serialize"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL forest back, rejecting malformed lines.
    pub fn parse_jsonl(text: &str) -> Result<Self, String> {
        let mut spans = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let span: TraceSpan = serde_json::from_str(line)
                .map_err(|err| format!("line {}: malformed trace span: {err}", number + 1))?;
            spans.push(span);
        }
        Ok(Self::from_spans(spans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::case_key;
    use svmodel::CaseInput;

    fn key(tag: usize) -> CaseKey {
        case_key(
            &CaseInput {
                spec: format!("spec {tag}"),
                buggy_source: format!("module m{tag}(); endmodule"),
                logs: String::new(),
            },
            3,
            0.2,
        )
    }

    fn session_tree(tag: usize, salt: u64, wall: u64) -> Vec<TraceSpan> {
        let root = TraceContext::root(key(tag), salt);
        vec![
            TraceSpan::new(&root, "session", stage::SESSION, 3, wall * 4),
            TraceSpan::new(&root.child("submit"), "submit", stage::SUBMIT, 3, wall),
            TraceSpan::new(&root.child("sample"), "sample", stage::SAMPLE, 3, wall),
            TraceSpan::new(&root.child("verify"), "verify", stage::VERIFY, 2, wall),
            TraceSpan::new(
                &root.child("evaluate"),
                "evaluate",
                stage::EVALUATE,
                1,
                wall,
            ),
        ]
    }

    #[test]
    fn contexts_are_pure_functions_of_content_and_salt() {
        let a = TraceContext::root(key(1), 0);
        assert_eq!(a, TraceContext::root(key(1), 0));
        assert_ne!(a.trace_id, TraceContext::root(key(2), 0).trace_id);
        assert_ne!(a.trace_id, TraceContext::root(key(1), 7).trace_id);
        let child = a.child("sample");
        assert_eq!(child, a.child("sample"));
        assert_eq!(child.trace_id, a.trace_id);
        assert_eq!(child.parent_span_id, Some(a.span_id));
        assert_ne!(child.span_id, a.child("verify").span_id);
        // Grandchildren chain: same label under different parents differs.
        assert_ne!(child.child("x").span_id, a.child("x").span_id);
    }

    #[test]
    fn forest_merges_duplicates_by_max_wall() {
        let mut spans = session_tree(1, 0, 100);
        // The same deterministic span observed by a second process, slower.
        spans.extend(session_tree(1, 0, 250));
        let forest = TraceForest::from_spans(spans);
        assert_eq!(forest.len(), 5, "duplicates merge");
        assert!(forest.spans().iter().all(|s| s.wall_ns >= 250));
    }

    #[test]
    fn deterministic_render_excludes_wall_and_is_stable() {
        let fast = TraceForest::from_spans(session_tree(3, 0, 10));
        let slow = TraceForest::from_spans(session_tree(3, 0, 99_999));
        assert_eq!(fast.render_deterministic(), slow.render_deterministic());
        assert_ne!(fast.render(), slow.render());
        let text = fast.render_deterministic();
        assert!(text.contains("name=session"));
        // Children indent under the root.
        assert!(text.contains("\n  trace="));
    }

    #[test]
    fn trees_reconstruct_roots_and_children() {
        let mut spans = session_tree(1, 0, 10);
        spans.extend(session_tree(2, 0, 20));
        let forest = TraceForest::from_spans(spans);
        let sessions = forest.sessions();
        assert_eq!(sessions.len(), 2);
        for session in &sessions {
            assert_eq!(session.name, "session");
            assert_eq!(session.wall_ns, session.attributed_ns);
            assert!((session.coverage() - 1.0).abs() < 1e-9);
        }
        let slowest = forest.slowest(1);
        assert_eq!(slowest.len(), 1);
        assert_eq!(slowest[0].wall_ns, 80);
    }

    #[test]
    fn collapsed_stacks_total_the_root_walls() {
        let forest = TraceForest::from_spans(session_tree(1, 0, 25));
        let profile = forest.collapsed();
        assert_eq!(profile.total(), 100, "profile total equals the root wall");
        let frames: Vec<(&str, u64)> = profile.frames().collect();
        assert!(frames.iter().any(|(stack, _)| *stack == "session;sample"));
        // Fully-attributed session: the residual root frame is zero.
        assert!(frames
            .iter()
            .any(|(stack, v)| *stack == "session" && *v == 0));
    }

    #[test]
    fn jsonl_round_trips() {
        let forest = TraceForest::from_spans(session_tree(5, 9, 42));
        let parsed = TraceForest::parse_jsonl(&forest.render_jsonl()).expect("round trip");
        assert_eq!(parsed, forest);
        assert!(TraceForest::parse_jsonl("{nonsense\n").is_err());
    }

    #[test]
    fn handle_follows_the_tracer_recipe() {
        let off = TraceHandle::off();
        assert!(!off.is_on());
        assert_eq!(off, TraceHandle::off());
        assert!(off.root(key(1)).is_none());
        off.record(session_tree(1, 0, 1).remove(0));
        assert!(off.drain().is_empty());
        assert_eq!(format!("{off:?}"), "TraceHandle(off)");

        let on = TraceHandle::new(0);
        assert!(on.is_on());
        assert_eq!(on, on.clone());
        assert_ne!(on, TraceHandle::new(0), "identity, not salt equality");
        let ctx = on.root(key(1)).expect("root context");
        assert_eq!(ctx, TraceContext::root(key(1), 0));
        on.record(TraceSpan::new(&ctx, "session", stage::SESSION, 1, 5));
        on.extend(vec![TraceSpan::new(
            &ctx.child("sample"),
            "sample",
            stage::SAMPLE,
            1,
            5,
        )]);
        let drained = on.drain();
        assert_eq!(drained.len(), 2);
        assert!(on.drain().is_empty(), "drain takes");
    }

    #[test]
    fn drain_order_is_independent_of_collection_order() {
        let run = |reverse: bool| {
            let handle = TraceHandle::new(0);
            let mut spans = session_tree(1, 0, 7);
            spans.extend(session_tree(2, 0, 7));
            if reverse {
                spans.reverse();
            }
            for span in spans {
                handle.record(span);
            }
            handle.drain()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn env_knob_parses_loosely_and_defaults_off() {
        std::env::remove_var(TRACE_ENV);
        assert!(!env_trace());
        assert!(!TraceHandle::from_env().is_on());
        std::env::set_var(TRACE_ENV, "1");
        assert!(env_trace());
        assert!(TraceHandle::from_env().is_on());
        std::env::set_var(TRACE_ENV, "off");
        assert!(!env_trace());
        std::env::remove_var(TRACE_ENV);
    }
}
