//! Lock-free service instrumentation and the [`ServiceMetrics`] snapshot.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Internal atomic counters shared by the submit path and the workers.
pub(crate) struct MetricsRecorder {
    started_at: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    solve_panics: AtomicU64,
    peak_queue_depth: AtomicU64,
    queue_wait_ns: AtomicU64,
    cache_lookup_ns: AtomicU64,
    solve_ns: AtomicU64,
}

impl MetricsRecorder {
    pub(crate) fn new() -> Self {
        Self {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            solve_panics: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            cache_lookup_ns: AtomicU64::new(0),
            solve_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_submit(&self, depth_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.peak_queue_depth
            .fetch_max(depth_after as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_solve_panic(&self) {
        self.solve_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_job(
        &self,
        queue_wait: Duration,
        cache_lookup: Duration,
        solve: Option<Duration>,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns
            .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        self.cache_lookup_ns
            .fetch_add(cache_lookup.as_nanos() as u64, Ordering::Relaxed);
        match solve {
            Some(duration) => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.solve_ns
                    .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
            }
            None => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn snapshot(
        &self,
        workers: usize,
        queue_depth: usize,
        cache_entries: usize,
    ) -> ServiceMetrics {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let solve_panics = self.solve_panics.load(Ordering::Relaxed);
        let uptime = self.started_at.elapsed();
        let per_mean = |total_ns: &AtomicU64, count: u64| {
            if count == 0 {
                0.0
            } else {
                total_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0
            }
        };
        ServiceMetrics {
            workers,
            submitted,
            completed,
            queue_depth,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed) as usize,
            cache_hits,
            cache_misses,
            cache_entries,
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
            solve_panics,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            mean_queue_wait_us: per_mean(&self.queue_wait_ns, completed),
            mean_cache_lookup_us: per_mean(&self.cache_lookup_ns, completed),
            mean_solve_us: per_mean(&self.solve_ns, cache_misses),
            uptime_secs: uptime.as_secs_f64(),
            throughput_per_sec: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time view of service health and performance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceMetrics {
    /// Number of worker threads.
    pub workers: usize,
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests fully served (cache hits included).
    pub completed: u64,
    /// Jobs currently waiting across all shards.
    pub queue_depth: usize,
    /// Highest single-shard depth observed at submit time.
    pub peak_queue_depth: usize,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests that required a model invocation.
    pub cache_misses: u64,
    /// Entries currently resident across all shard caches.
    pub cache_entries: usize,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing completed.
    pub cache_hit_rate: f64,
    /// Model invocations that panicked; the service absorbed the panic and served
    /// an empty response set instead of stranding the ticket.
    pub solve_panics: u64,
    /// Mean jobs drained per worker wake-up (micro-batching effectiveness).
    pub mean_batch_size: f64,
    /// Mean time a job spent queued, in microseconds.
    pub mean_queue_wait_us: f64,
    /// Mean cache probe time, in microseconds.
    pub mean_cache_lookup_us: f64,
    /// Mean model invocation time (misses only), in microseconds.
    pub mean_solve_us: f64,
    /// Service lifetime at snapshot, in seconds.
    pub uptime_secs: f64,
    /// Completed requests per second of uptime.
    pub throughput_per_sec: f64,
}

impl ServiceMetrics {
    /// Renders the snapshot as an aligned text block for logs and examples.
    pub fn render(&self) -> String {
        format!(
            "service metrics\n\
             \x20 workers           {:>10}\n\
             \x20 submitted         {:>10}\n\
             \x20 completed         {:>10}\n\
             \x20 throughput        {:>10.1} cases/s\n\
             \x20 queue depth       {:>10} (peak {})\n\
             \x20 cache             {:>10} entries, {} hits / {} misses ({:.1}% hit rate)\n\
             \x20 solve panics      {:>10}\n\
             \x20 mean batch size   {:>10.2}\n\
             \x20 queue wait        {:>10.1} µs mean\n\
             \x20 cache lookup      {:>10.1} µs mean\n\
             \x20 model solve       {:>10.1} µs mean\n\
             \x20 uptime            {:>10.3} s",
            self.workers,
            self.submitted,
            self.completed,
            self.throughput_per_sec,
            self.queue_depth,
            self.peak_queue_depth,
            self.cache_entries,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate * 100.0,
            self.solve_panics,
            self.mean_batch_size,
            self.mean_queue_wait_us,
            self.mean_cache_lookup_us,
            self.mean_solve_us,
            self.uptime_secs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_counters() {
        let recorder = MetricsRecorder::new();
        recorder.record_submit(3);
        recorder.record_submit(1);
        recorder.record_batch();
        recorder.record_job(
            Duration::from_micros(10),
            Duration::from_micros(1),
            Some(Duration::from_micros(100)),
        );
        recorder.record_job(Duration::from_micros(30), Duration::from_micros(1), None);
        let snap = recorder.snapshot(4, 1, 7);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.peak_queue_depth, 3);
        assert_eq!(snap.cache_entries, 7);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!((snap.mean_batch_size - 2.0).abs() < 1e-12);
        assert!((snap.mean_queue_wait_us - 20.0).abs() < 1e-9);
        assert!((snap.mean_solve_us - 100.0).abs() < 1e-9);
        assert!(snap.render().contains("cases/s"));
    }
}
