//! Lock-free pool instrumentation and the [`ServiceMetrics`] / [`VerifyMetrics`]
//! snapshots.
//!
//! One `MetricsRecorder` instruments one worker pool.  The repair pool snapshots it
//! as [`ServiceMetrics`]; the verify pool snapshots the same counters (plus the
//! verdict tallies) as [`VerifyMetrics`], and a combined view is available through
//! [`ServiceMetrics::with_verify`].

use crate::telemetry::{MetricClass, RegistrySnapshot};
use crate::wire::FleetMetrics;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Internal atomic counters shared by the submit path and the workers.
///
/// The "solve" stage doubles as the verify pool's "verdict" stage: both are the
/// cache-miss work a worker performs between dequeue and ticket fulfilment.
pub(crate) struct MetricsRecorder {
    started_at: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    solve_panics: AtomicU64,
    verdicts_true: AtomicU64,
    verdicts_false: AtomicU64,
    warm_hits: AtomicU64,
    snapshot_loaded_entries: AtomicU64,
    snapshot_saved_entries: AtomicU64,
    snapshot_saves: AtomicU64,
    snapshot_save_failures: AtomicU64,
    snapshot_rejects: AtomicU64,
    snapshot_compacted_entries: AtomicU64,
    peak_queue_depth: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    shed_busy: AtomicU64,
    journal_events: AtomicU64,
    queue_wait_ns: AtomicU64,
    cache_lookup_ns: AtomicU64,
    solve_ns: AtomicU64,
}

impl MetricsRecorder {
    pub(crate) fn new() -> Self {
        Self {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            solve_panics: AtomicU64::new(0),
            verdicts_true: AtomicU64::new(0),
            verdicts_false: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            snapshot_loaded_entries: AtomicU64::new(0),
            snapshot_saved_entries: AtomicU64::new(0),
            snapshot_saves: AtomicU64::new(0),
            snapshot_save_failures: AtomicU64::new(0),
            snapshot_rejects: AtomicU64::new(0),
            snapshot_compacted_entries: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            journal_events: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            cache_lookup_ns: AtomicU64::new(0),
            solve_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_submit(&self, depth_after: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.peak_queue_depth
            .fetch_max(depth_after as u64, Ordering::Relaxed);
    }

    /// Admission control: reserves one in-flight slot, or reports the pool
    /// busy.  `limit == 0` means unbounded (the slot is still counted, so the
    /// in-flight gauge works either way).  The reservation is released by
    /// [`MetricsRecorder::record_job`] when the job completes, or by
    /// [`MetricsRecorder::release_in_flight`] when the submission is abandoned
    /// before it ever reached a queue.
    pub(crate) fn try_admit(&self, limit: usize) -> bool {
        let admitted = if limit == 0 {
            self.in_flight.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            let updated =
                self.in_flight
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                        (current < limit as u64).then_some(current + 1)
                    });
            match updated {
                Ok(previous) => previous + 1,
                Err(_) => return false,
            }
        };
        self.peak_in_flight.fetch_max(admitted, Ordering::Relaxed);
        true
    }

    /// Counts one request shed by admission control (`SubmitError::Busy`).
    pub(crate) fn record_shed(&self) {
        self.shed_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one event this pool emitted to an installed [`crate::Tracer`];
    /// stays zero while no tracer is configured (journaling off).
    pub(crate) fn record_journal_event(&self) {
        self.journal_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Releases an in-flight slot for a submission that never became a job
    /// (closed while enqueueing, or an async submit future dropped first).
    /// Saturating, so a stray release can never wrap the gauge.
    pub(crate) fn release_in_flight(&self) {
        let _ = self
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                Some(current.saturating_sub(1))
            });
    }

    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_solve_panic(&self) {
        self.solve_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a cache hit served from a snapshot-preloaded entry.
    pub(crate) fn record_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful snapshot preload of `entries` cache entries.
    pub(crate) fn record_snapshot_load(&self, entries: usize) {
        self.snapshot_loaded_entries
            .fetch_add(entries as u64, Ordering::Relaxed);
    }

    /// Records a snapshot that existed but was rejected (corrupt or mismatched).
    pub(crate) fn record_snapshot_reject(&self) {
        self.snapshot_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a successful snapshot write of `entries` cache entries.
    pub(crate) fn record_snapshot_save(&self, entries: usize) {
        self.snapshot_saves.fetch_add(1, Ordering::Relaxed);
        self.snapshot_saved_entries
            .store(entries as u64, Ordering::Relaxed);
    }

    /// Records a snapshot write that failed (I/O error); the automatic flush
    /// paths swallow the error itself, so this counter is the only signal that
    /// persistence is not actually persisting.
    pub(crate) fn record_snapshot_save_failure(&self) {
        self.snapshot_save_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `entries` snapshot entries dropped by age-based compaction at
    /// flush time (entries not warm-hit for more than
    /// `PersistSpec::compact_after` runs).
    pub(crate) fn record_snapshot_compaction(&self, entries: usize) {
        self.snapshot_compacted_entries
            .fetch_add(entries as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_verdict(&self, verdict: bool) {
        if verdict {
            self.verdicts_true.fetch_add(1, Ordering::Relaxed);
        } else {
            self.verdicts_false.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_job(
        &self,
        queue_wait: Duration,
        cache_lookup: Duration,
        solve: Option<Duration>,
    ) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.release_in_flight();
        self.queue_wait_ns
            .fetch_add(queue_wait.as_nanos() as u64, Ordering::Relaxed);
        self.cache_lookup_ns
            .fetch_add(cache_lookup.as_nanos() as u64, Ordering::Relaxed);
        match solve {
            Some(duration) => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.solve_ns
                    .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
            }
            None => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Loads every counter the two snapshot shapes share, in one place, so the
    /// rate/mean formulas cannot drift between the repair and verify views.
    fn stage(&self) -> Stage {
        let completed = self.completed.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let uptime = self.started_at.elapsed();
        let per_mean = |total_ns: &AtomicU64, count: u64| {
            if count == 0 {
                0.0
            } else {
                total_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0
            }
        };
        Stage {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed) as usize,
            in_flight_sessions: self.in_flight.load(Ordering::Relaxed) as usize,
            peak_in_flight_sessions: self.peak_in_flight.load(Ordering::Relaxed) as usize,
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            journal_events: self.journal_events.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                self.warm_hits.load(Ordering::Relaxed) as f64 / (cache_hits + cache_misses) as f64
            },
            snapshot_loaded_entries: self.snapshot_loaded_entries.load(Ordering::Relaxed),
            snapshot_saved_entries: self.snapshot_saved_entries.load(Ordering::Relaxed),
            snapshot_saves: self.snapshot_saves.load(Ordering::Relaxed),
            snapshot_save_failures: self.snapshot_save_failures.load(Ordering::Relaxed),
            snapshot_rejects: self.snapshot_rejects.load(Ordering::Relaxed),
            snapshot_compacted_entries: self.snapshot_compacted_entries.load(Ordering::Relaxed),
            panics: self.solve_panics.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            mean_queue_wait_us: per_mean(&self.queue_wait_ns, completed),
            mean_cache_lookup_us: per_mean(&self.cache_lookup_ns, completed),
            mean_work_us: per_mean(&self.solve_ns, cache_misses),
            uptime_secs: uptime.as_secs_f64(),
            throughput_per_sec: if uptime.as_secs_f64() > 0.0 {
                completed as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
        }
    }

    pub(crate) fn snapshot(
        &self,
        workers: usize,
        queue_depth: usize,
        cache_entries: usize,
    ) -> ServiceMetrics {
        let stage = self.stage();
        ServiceMetrics {
            workers,
            submitted: stage.submitted,
            completed: stage.completed,
            queue_depth,
            peak_queue_depth: stage.peak_queue_depth,
            in_flight_sessions: stage.in_flight_sessions,
            peak_in_flight_sessions: stage.peak_in_flight_sessions,
            shed_busy: stage.shed_busy,
            journal_events: stage.journal_events,
            cache_hits: stage.cache_hits,
            cache_misses: stage.cache_misses,
            cache_entries,
            cache_hit_rate: stage.cache_hit_rate,
            warm_hits: stage.warm_hits,
            warm_hit_rate: stage.warm_hit_rate,
            snapshot_loaded_entries: stage.snapshot_loaded_entries,
            snapshot_saved_entries: stage.snapshot_saved_entries,
            snapshot_saves: stage.snapshot_saves,
            snapshot_save_failures: stage.snapshot_save_failures,
            snapshot_rejects: stage.snapshot_rejects,
            snapshot_compacted_entries: stage.snapshot_compacted_entries,
            solve_panics: stage.panics,
            mean_batch_size: stage.mean_batch_size,
            mean_queue_wait_us: stage.mean_queue_wait_us,
            mean_cache_lookup_us: stage.mean_cache_lookup_us,
            mean_solve_us: stage.mean_work_us,
            uptime_secs: stage.uptime_secs,
            throughput_per_sec: stage.throughput_per_sec,
            verify: None,
            fleet: None,
        }
    }

    pub(crate) fn snapshot_verify(
        &self,
        workers: usize,
        queue_depth: usize,
        cache_entries: usize,
    ) -> VerifyMetrics {
        let stage = self.stage();
        VerifyMetrics {
            workers,
            submitted: stage.submitted,
            completed: stage.completed,
            queue_depth,
            peak_queue_depth: stage.peak_queue_depth,
            in_flight_sessions: stage.in_flight_sessions,
            peak_in_flight_sessions: stage.peak_in_flight_sessions,
            shed_busy: stage.shed_busy,
            journal_events: stage.journal_events,
            cache_hits: stage.cache_hits,
            cache_misses: stage.cache_misses,
            cache_entries,
            cache_hit_rate: stage.cache_hit_rate,
            warm_hits: stage.warm_hits,
            warm_hit_rate: stage.warm_hit_rate,
            snapshot_loaded_entries: stage.snapshot_loaded_entries,
            snapshot_saved_entries: stage.snapshot_saved_entries,
            snapshot_saves: stage.snapshot_saves,
            snapshot_save_failures: stage.snapshot_save_failures,
            snapshot_rejects: stage.snapshot_rejects,
            snapshot_compacted_entries: stage.snapshot_compacted_entries,
            verdict_panics: stage.panics,
            verdicts_true: self.verdicts_true.load(Ordering::Relaxed),
            verdicts_false: self.verdicts_false.load(Ordering::Relaxed),
            mean_batch_size: stage.mean_batch_size,
            mean_queue_wait_us: stage.mean_queue_wait_us,
            mean_cache_lookup_us: stage.mean_cache_lookup_us,
            mean_verdict_us: stage.mean_work_us,
            uptime_secs: stage.uptime_secs,
            throughput_per_sec: stage.throughput_per_sec,
        }
    }
}

/// The pool-agnostic slice of a snapshot: everything both views derive from the
/// shared counters ("work" is model solve time for repair, verdict time for verify).
struct Stage {
    submitted: u64,
    completed: u64,
    peak_queue_depth: usize,
    in_flight_sessions: usize,
    peak_in_flight_sessions: usize,
    shed_busy: u64,
    journal_events: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    warm_hits: u64,
    warm_hit_rate: f64,
    snapshot_loaded_entries: u64,
    snapshot_saved_entries: u64,
    snapshot_saves: u64,
    snapshot_save_failures: u64,
    snapshot_rejects: u64,
    snapshot_compacted_entries: u64,
    panics: u64,
    mean_batch_size: f64,
    mean_queue_wait_us: f64,
    mean_cache_lookup_us: f64,
    mean_work_us: f64,
    uptime_secs: f64,
    throughput_per_sec: f64,
}

/// A point-in-time view of service health and performance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceMetrics {
    /// Number of worker threads.
    pub workers: usize,
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests fully served (cache hits included).
    pub completed: u64,
    /// Jobs currently waiting across all shards.
    pub queue_depth: usize,
    /// Highest single-shard depth observed at submit time.
    pub peak_queue_depth: usize,
    /// Requests admitted but not yet completed — the in-flight session gauge.
    /// Admission happens before enqueueing, so this also counts submissions
    /// parked awaiting queue space (it can exceed `submitted - completed`
    /// while async submits are waiting, and drops back when they enqueue,
    /// complete, or are abandoned).
    pub in_flight_sessions: usize,
    /// Highest concurrent in-flight count observed over the pool's lifetime.
    pub peak_in_flight_sessions: usize,
    /// Requests shed by admission control (`max_in_flight` reached); each one
    /// was rejected with `SubmitError::Busy` instead of queued.
    pub shed_busy: u64,
    /// Events this pool emitted to an installed [`crate::Tracer`] (admits,
    /// sheds, cache provenance, panics); zero while journaling is off.
    pub journal_events: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests that required a model invocation.
    pub cache_misses: u64,
    /// Entries currently resident across all shard caches.
    pub cache_entries: usize,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing completed.
    pub cache_hit_rate: f64,
    /// Cache hits served from entries preloaded out of a persisted snapshot
    /// (the warm-start subset of `cache_hits`; see [`crate::persist`]).
    pub warm_hits: u64,
    /// `warm_hits / (cache_hits + cache_misses)`, 0 when nothing completed —
    /// the fraction of traffic a disk snapshot absorbed.
    pub warm_hit_rate: f64,
    /// Entries preloaded from a snapshot at pool start (0 when none configured
    /// or the snapshot was missing/rejected).
    pub snapshot_loaded_entries: u64,
    /// Entries written by the most recent snapshot flush.
    pub snapshot_saved_entries: u64,
    /// Successful snapshot flushes over the pool's lifetime.
    pub snapshot_saves: u64,
    /// Snapshot flushes that failed with an I/O error.  The automatic flush
    /// paths (shutdown, drop, scoped exit) swallow the error itself, so a
    /// nonzero value here is the signal that persistence is not persisting.
    pub snapshot_save_failures: u64,
    /// Snapshots that existed on disk but were rejected as corrupt or mismatched
    /// (version, kind, fingerprint or model); each one degraded to a cold start.
    pub snapshot_rejects: u64,
    /// Snapshot entries dropped by age-based compaction at flush time (entries
    /// not warm-hit for more than `PersistSpec::compact_after` runs); cumulative
    /// over the pool's lifetime.
    pub snapshot_compacted_entries: u64,
    /// Model invocations that panicked; the service absorbed the panic and served
    /// an empty response set instead of stranding the ticket.
    pub solve_panics: u64,
    /// Mean jobs drained per worker wake-up (micro-batching effectiveness).
    pub mean_batch_size: f64,
    /// Mean time a job spent queued, in microseconds.
    pub mean_queue_wait_us: f64,
    /// Mean cache probe time, in microseconds.
    pub mean_cache_lookup_us: f64,
    /// Mean model invocation time (misses only), in microseconds.
    pub mean_solve_us: f64,
    /// Service lifetime at snapshot, in seconds.
    pub uptime_secs: f64,
    /// Completed requests per second of uptime.
    pub throughput_per_sec: f64,
    /// Verification-stage metrics, when the service runs in tandem with a verify
    /// pool (see [`ServiceMetrics::with_verify`]); `None` for a sampling-only pool.
    pub verify: Option<VerifyMetrics>,
    /// Shard-fleet wire metrics, when sampling ran over a distributed fleet
    /// (see [`ServiceMetrics::with_fleet`]); `None` for in-process serving.
    pub fleet: Option<FleetMetrics>,
}

/// A point-in-time view of the verification offload pool.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VerifyMetrics {
    /// Number of verify worker threads.
    pub workers: usize,
    /// Verdict jobs accepted by `submit`.
    pub submitted: u64,
    /// Verdict jobs fully served (cache hits included).
    pub completed: u64,
    /// Jobs currently waiting across all verify shards.
    pub queue_depth: usize,
    /// Highest single-shard depth observed at submit time.
    pub peak_queue_depth: usize,
    /// Verdict jobs admitted but not yet completed — the in-flight gauge.
    pub in_flight_sessions: usize,
    /// Highest concurrent in-flight count observed over the pool's lifetime.
    pub peak_in_flight_sessions: usize,
    /// Verdict jobs shed by admission control (0 unless a limit is configured).
    pub shed_busy: u64,
    /// Events this pool emitted to an installed [`crate::Tracer`] (admits,
    /// cache provenance, judge panics); zero while journaling is off.
    pub journal_events: u64,
    /// Verdicts answered from the verdict cache.
    pub cache_hits: u64,
    /// Verdicts that required running the judge.
    pub cache_misses: u64,
    /// Verdicts currently resident across all shard caches.
    pub cache_entries: usize,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing completed.
    pub cache_hit_rate: f64,
    /// Cache hits served from verdicts preloaded out of a persisted snapshot
    /// (the warm-start subset of `cache_hits`; see [`crate::persist`]).
    pub warm_hits: u64,
    /// `warm_hits / (cache_hits + cache_misses)`, 0 when nothing completed —
    /// the fraction of traffic a disk snapshot absorbed.
    pub warm_hit_rate: f64,
    /// Verdicts preloaded from a snapshot at pool start (0 when none configured
    /// or the snapshot was missing/rejected).
    pub snapshot_loaded_entries: u64,
    /// Verdicts written by the most recent snapshot flush.
    pub snapshot_saved_entries: u64,
    /// Successful snapshot flushes over the pool's lifetime.
    pub snapshot_saves: u64,
    /// Snapshot flushes that failed with an I/O error.  The automatic flush
    /// paths (shutdown, drop, scoped exit) swallow the error itself, so a
    /// nonzero value here is the signal that persistence is not persisting.
    pub snapshot_save_failures: u64,
    /// Snapshots that existed on disk but were rejected as corrupt or mismatched
    /// (version, kind, fingerprint or model); each one degraded to a cold start.
    pub snapshot_rejects: u64,
    /// Snapshot entries dropped by age-based compaction at flush time (entries
    /// not warm-hit for more than `PersistSpec::compact_after` runs); cumulative
    /// over the pool's lifetime.
    pub snapshot_compacted_entries: u64,
    /// Judge invocations that panicked; the pool absorbed the panic and served a
    /// failed verdict instead of stranding the ticket (never cached).
    pub verdict_panics: u64,
    /// Computed verdicts that accepted the candidate.
    pub verdicts_true: u64,
    /// Computed verdicts that rejected the candidate.
    pub verdicts_false: u64,
    /// Mean jobs drained per worker wake-up (micro-batching effectiveness).
    pub mean_batch_size: f64,
    /// Mean time a job spent queued, in microseconds.
    pub mean_queue_wait_us: f64,
    /// Mean cache probe time, in microseconds.
    pub mean_cache_lookup_us: f64,
    /// Mean judge invocation time (misses only), in microseconds.
    pub mean_verdict_us: f64,
    /// Pool lifetime at snapshot, in seconds.
    pub uptime_secs: f64,
    /// Completed verdicts per second of uptime.
    pub throughput_per_sec: f64,
}

/// Formats one labelled, aligned metrics block: a title line followed by
/// `  name  value` rows with the names left-padded to a shared column.
///
/// Every `render()` in this crate — `ServiceMetrics`, `VerifyMetrics`, and the
/// per-route views in [`crate::route`] — is built from this helper, so nested
/// views compose out of the same formatting instead of each duplicating it.
pub fn render_block(title: &str, rows: &[(&str, String)]) -> String {
    let mut out = String::from(title);
    for (name, value) in rows {
        out.push('\n');
        out.push_str(&format!("\x20 {name:<17} {value}"));
    }
    out
}

/// Indents every line of an already rendered block by `spaces`, so a child
/// block (e.g. one backend of a router) nests visually under its parent.
pub fn indent_block(block: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    block
        .lines()
        .map(|line| format!("{pad}{line}"))
        .collect::<Vec<_>>()
        .join("\n")
}

impl VerifyMetrics {
    /// Exports the snapshot's fields as registry series under `prefix` (see
    /// [`ServiceMetrics::export`]).  Verdict tallies are deterministic — a
    /// verdict is a pure function of `(case, response, checker config)`.
    pub fn export(&self, prefix: &str, out: &mut RegistrySnapshot) {
        let det = MetricClass::Deterministic;
        let vol = MetricClass::Volatile;
        out.upsert_counter(&format!("{prefix}.submitted"), det, self.submitted);
        out.upsert_counter(&format!("{prefix}.completed"), det, self.completed);
        out.upsert_counter(
            &format!("{prefix}.verdicts.accepted"),
            det,
            self.verdicts_true,
        );
        out.upsert_counter(
            &format!("{prefix}.verdicts.rejected"),
            det,
            self.verdicts_false,
        );
        out.upsert_counter(&format!("{prefix}.cache.hits"), vol, self.cache_hits);
        out.upsert_counter(&format!("{prefix}.cache.misses"), vol, self.cache_misses);
        out.upsert_counter(&format!("{prefix}.cache.warm_hits"), vol, self.warm_hits);
        out.upsert_gauge(
            &format!("{prefix}.cache.entries"),
            vol,
            self.cache_entries as u64,
        );
        out.upsert_gauge(
            &format!("{prefix}.queue.depth"),
            vol,
            self.queue_depth as u64,
        );
        out.upsert_gauge(
            &format!("{prefix}.queue.peak_depth"),
            vol,
            self.peak_queue_depth as u64,
        );
        out.upsert_counter(&format!("{prefix}.shed_busy"), vol, self.shed_busy);
        out.upsert_counter(&format!("{prefix}.panics"), vol, self.verdict_panics);
        out.upsert_counter(
            &format!("{prefix}.journal.events"),
            vol,
            self.journal_events,
        );
    }

    /// The aligned rows behind [`VerifyMetrics::render`], exposed so composite
    /// views (e.g. a router's per-backend listing) can re-title or nest them.
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("workers", format!("{:>10}", self.workers)),
            ("submitted", format!("{:>10}", self.submitted)),
            ("completed", format!("{:>10}", self.completed)),
            (
                "throughput",
                format!("{:>10.1} verdicts/s", self.throughput_per_sec),
            ),
            (
                "queue depth",
                format!("{:>10} (peak {})", self.queue_depth, self.peak_queue_depth),
            ),
            (
                "in flight",
                format!(
                    "{:>10} now (peak {}), {} shed busy",
                    self.in_flight_sessions, self.peak_in_flight_sessions, self.shed_busy
                ),
            ),
            (
                "cache",
                format!(
                    "{:>10} entries, {} hits / {} misses ({:.1}% hit rate)",
                    self.cache_entries,
                    self.cache_hits,
                    self.cache_misses,
                    self.cache_hit_rate * 100.0
                ),
            ),
            (
                "warm start",
                format!(
                    "{:>10} snapshot hits ({:.1}% of traffic), {} preloaded, {} saved, {} rejects, {} save failures, {} compacted",
                    self.warm_hits,
                    self.warm_hit_rate * 100.0,
                    self.snapshot_loaded_entries,
                    self.snapshot_saved_entries,
                    self.snapshot_rejects,
                    self.snapshot_save_failures,
                    self.snapshot_compacted_entries
                ),
            ),
            (
                "verdicts",
                format!(
                    "{:>10} accepted, {} rejected, {} panics",
                    self.verdicts_true, self.verdicts_false, self.verdict_panics
                ),
            ),
            (
                "journal",
                format!("{:>10} events emitted", self.journal_events),
            ),
            (
                "mean batch size",
                format!("{:>10.2}", self.mean_batch_size),
            ),
            (
                "queue wait",
                format!("{:>10.1} \u{b5}s mean", self.mean_queue_wait_us),
            ),
            (
                "cache lookup",
                format!("{:>10.1} \u{b5}s mean", self.mean_cache_lookup_us),
            ),
            (
                "verdict",
                format!("{:>10.1} \u{b5}s mean", self.mean_verdict_us),
            ),
            ("uptime", format!("{:>10.3} s", self.uptime_secs)),
        ]
    }

    /// Renders the snapshot as an aligned text block for logs and examples.
    pub fn render(&self) -> String {
        render_block("verify metrics", &self.rows())
    }
}

impl ServiceMetrics {
    /// Attaches a verify-pool snapshot, producing the combined two-pool view.
    pub fn with_verify(mut self, verify: VerifyMetrics) -> Self {
        self.verify = Some(verify);
        self
    }

    /// Attaches a shard-fleet snapshot, producing the combined sharded view.
    ///
    /// Before this existed, a sharded evaluation's top-level summary silently
    /// omitted wire errors and per-shard sheds — the fleet counters were
    /// snapshotted and dropped on the floor.
    pub fn with_fleet(mut self, fleet: FleetMetrics) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Exports the snapshot's fields as registry series under `prefix`
    /// (`<prefix>.submitted`, `<prefix>.cache.hits`, …), so the bespoke view
    /// and the unified telemetry plane expose one set of numbers.  Request and
    /// verdict totals are deterministic (pure functions of the workload);
    /// queue/cache/scheduling counters are volatile.
    pub fn export(&self, prefix: &str, out: &mut RegistrySnapshot) {
        let det = MetricClass::Deterministic;
        let vol = MetricClass::Volatile;
        out.upsert_counter(&format!("{prefix}.submitted"), det, self.submitted);
        out.upsert_counter(&format!("{prefix}.completed"), det, self.completed);
        out.upsert_counter(&format!("{prefix}.cache.hits"), vol, self.cache_hits);
        out.upsert_counter(&format!("{prefix}.cache.misses"), vol, self.cache_misses);
        out.upsert_counter(&format!("{prefix}.cache.warm_hits"), vol, self.warm_hits);
        out.upsert_gauge(
            &format!("{prefix}.cache.entries"),
            vol,
            self.cache_entries as u64,
        );
        out.upsert_gauge(
            &format!("{prefix}.queue.depth"),
            vol,
            self.queue_depth as u64,
        );
        out.upsert_gauge(
            &format!("{prefix}.queue.peak_depth"),
            vol,
            self.peak_queue_depth as u64,
        );
        out.upsert_gauge(
            &format!("{prefix}.in_flight"),
            vol,
            self.in_flight_sessions as u64,
        );
        out.upsert_counter(&format!("{prefix}.shed_busy"), vol, self.shed_busy);
        out.upsert_counter(&format!("{prefix}.panics"), vol, self.solve_panics);
        out.upsert_counter(
            &format!("{prefix}.journal.events"),
            vol,
            self.journal_events,
        );
        if let Some(verify) = &self.verify {
            verify.export(&format!("{prefix}.verify"), out);
        }
        if let Some(fleet) = &self.fleet {
            fleet.export(&format!("{prefix}.fleet"), out);
        }
    }

    /// The aligned rows behind [`ServiceMetrics::render`], exposed so composite
    /// views (e.g. a router's per-backend listing) can re-title or nest them.
    /// The attached verify stage, if any, is not part of the rows; `render`
    /// appends it as its own block.
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("workers", format!("{:>10}", self.workers)),
            ("submitted", format!("{:>10}", self.submitted)),
            ("completed", format!("{:>10}", self.completed)),
            (
                "throughput",
                format!("{:>10.1} cases/s", self.throughput_per_sec),
            ),
            (
                "queue depth",
                format!("{:>10} (peak {})", self.queue_depth, self.peak_queue_depth),
            ),
            (
                "in flight",
                format!(
                    "{:>10} now (peak {}), {} shed busy",
                    self.in_flight_sessions, self.peak_in_flight_sessions, self.shed_busy
                ),
            ),
            (
                "cache",
                format!(
                    "{:>10} entries, {} hits / {} misses ({:.1}% hit rate)",
                    self.cache_entries,
                    self.cache_hits,
                    self.cache_misses,
                    self.cache_hit_rate * 100.0
                ),
            ),
            (
                "warm start",
                format!(
                    "{:>10} snapshot hits ({:.1}% of traffic), {} preloaded, {} saved, {} rejects, {} save failures, {} compacted",
                    self.warm_hits,
                    self.warm_hit_rate * 100.0,
                    self.snapshot_loaded_entries,
                    self.snapshot_saved_entries,
                    self.snapshot_rejects,
                    self.snapshot_save_failures,
                    self.snapshot_compacted_entries
                ),
            ),
            ("solve panics", format!("{:>10}", self.solve_panics)),
            (
                "journal",
                format!("{:>10} events emitted", self.journal_events),
            ),
            (
                "mean batch size",
                format!("{:>10.2}", self.mean_batch_size),
            ),
            (
                "queue wait",
                format!("{:>10.1} \u{b5}s mean", self.mean_queue_wait_us),
            ),
            (
                "cache lookup",
                format!("{:>10.1} \u{b5}s mean", self.mean_cache_lookup_us),
            ),
            (
                "model solve",
                format!("{:>10.1} \u{b5}s mean", self.mean_solve_us),
            ),
            ("uptime", format!("{:>10.3} s", self.uptime_secs)),
        ]
    }

    /// Renders the snapshot as an aligned text block for logs and examples; a
    /// combined snapshot appends the verification stage — and, for sharded
    /// runs, the fleet stage — as their own blocks.
    pub fn render(&self) -> String {
        let mut out = render_block("service metrics", &self.rows());
        if let Some(verify) = &self.verify {
            out.push('\n');
            out.push_str(&verify.render());
        }
        if let Some(fleet) = &self.fleet {
            out.push('\n');
            out.push_str(&fleet.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_aggregates_counters() {
        let recorder = MetricsRecorder::new();
        recorder.record_submit(3);
        recorder.record_submit(1);
        recorder.record_batch();
        recorder.record_job(
            Duration::from_micros(10),
            Duration::from_micros(1),
            Some(Duration::from_micros(100)),
        );
        recorder.record_job(Duration::from_micros(30), Duration::from_micros(1), None);
        let snap = recorder.snapshot(4, 1, 7);
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.peak_queue_depth, 3);
        assert_eq!(snap.cache_entries, 7);
        assert!((snap.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!((snap.mean_batch_size - 2.0).abs() < 1e-12);
        assert!((snap.mean_queue_wait_us - 20.0).abs() < 1e-9);
        assert!((snap.mean_solve_us - 100.0).abs() < 1e-9);
        assert!(snap.render().contains("cases/s"));
    }

    #[test]
    fn verify_snapshot_tallies_verdicts() {
        let recorder = MetricsRecorder::new();
        recorder.record_submit(2);
        recorder.record_batch();
        recorder.record_verdict(true);
        recorder.record_job(
            Duration::from_micros(5),
            Duration::from_micros(1),
            Some(Duration::from_micros(40)),
        );
        recorder.record_verdict(false);
        recorder.record_job(
            Duration::from_micros(5),
            Duration::from_micros(1),
            Some(Duration::from_micros(60)),
        );
        recorder.record_job(Duration::from_micros(5), Duration::from_micros(1), None);
        let snap = recorder.snapshot_verify(2, 0, 2);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.verdicts_true, 1);
        assert_eq!(snap.verdicts_false, 1);
        assert_eq!(snap.verdict_panics, 0);
        assert!((snap.mean_verdict_us - 50.0).abs() < 1e-9);
        assert!(snap.render().contains("verdicts/s"));
    }

    #[test]
    fn snapshot_counters_feed_the_warm_start_view() {
        let recorder = MetricsRecorder::new();
        recorder.record_snapshot_load(12);
        recorder.record_snapshot_reject();
        // Three completed jobs: two hits (one warm), one miss.
        recorder.record_job(Duration::from_micros(1), Duration::from_micros(1), None);
        recorder.record_warm_hit();
        recorder.record_job(Duration::from_micros(1), Duration::from_micros(1), None);
        recorder.record_job(
            Duration::from_micros(1),
            Duration::from_micros(1),
            Some(Duration::from_micros(5)),
        );
        recorder.record_snapshot_save(9);
        recorder.record_snapshot_compaction(3);
        let snap = recorder.snapshot(1, 0, 9);
        assert_eq!(snap.snapshot_loaded_entries, 12);
        assert_eq!(snap.snapshot_saved_entries, 9);
        assert_eq!(snap.snapshot_saves, 1);
        assert_eq!(snap.snapshot_rejects, 1);
        assert_eq!(snap.snapshot_compacted_entries, 3);
        assert_eq!(snap.warm_hits, 1);
        assert!((snap.warm_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!(snap.render().contains("warm start"));
        // The verify view derives from the same counters.
        let verify = recorder.snapshot_verify(1, 0, 9);
        assert_eq!(verify.warm_hits, 1);
        assert_eq!(verify.snapshot_loaded_entries, 12);
        assert!(verify.render().contains("warm start"));
    }

    #[test]
    fn render_blocks_compose_and_nest() {
        let rows = vec![("alpha", "1".to_string()), ("beta", "2".to_string())];
        let block = render_block("title", &rows);
        assert!(block.starts_with("title\n"));
        assert!(block.contains("alpha"));
        // Each row lands on its own line, names padded to a shared column.
        assert_eq!(block.lines().count(), 3);
        let nested = indent_block(&block, 4);
        assert!(nested.lines().all(|line| line.starts_with("    ")));
        assert_eq!(nested.lines().count(), 3);
        // The real snapshots render through the same helper.
        let recorder = MetricsRecorder::new();
        let snap = recorder.snapshot(1, 0, 0);
        assert_eq!(snap.render(), render_block("service metrics", &snap.rows()));
    }

    #[test]
    fn zero_request_rates_are_zero_not_nan() {
        // An idle pool must report 0 rates, not NaN (0/0) — a `NaN%` hit rate
        // in a summary poisons downstream comparisons and JSON consumers.
        let recorder = MetricsRecorder::new();
        let snap = recorder.snapshot(1, 0, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
        assert_eq!(snap.warm_hit_rate, 0.0);
        assert_eq!(snap.mean_batch_size, 0.0);
        assert_eq!(snap.mean_queue_wait_us, 0.0);
        assert!(!snap.throughput_per_sec.is_nan());
        assert!(snap.render().contains("(0.0% hit rate)"));
        let verify = recorder.snapshot_verify(1, 0, 0);
        assert_eq!(verify.cache_hit_rate, 0.0);
        assert!(!verify.mean_verdict_us.is_nan());
        assert!(verify.render().contains("(0.0% hit rate)"));
    }

    #[test]
    fn sharded_summary_includes_fleet_wire_errors_and_sheds() {
        // Regression: before `with_fleet`, a sharded evaluation's top-level
        // summary dropped the fleet counters entirely — wire errors and
        // per-shard sheds were invisible in the rendered report.
        let fleet = FleetMetrics {
            shards: 2,
            dead_shards: 1,
            submitted: 10,
            completed: 7,
            remote_cache_hits: 3,
            shed_busy: 1,
            wire_errors: 2,
            journal_events: 0,
        };
        let recorder = MetricsRecorder::new();
        let plain = recorder.snapshot(2, 0, 0);
        assert!(
            !plain.render().contains("fleet metrics"),
            "in-process runs must not grow a fleet block"
        );
        let combined = recorder.snapshot(2, 0, 0).with_fleet(fleet.clone());
        let text = combined.render();
        assert!(text.contains("fleet metrics"));
        assert!(text.contains("wire errors"));
        assert!(text.contains("shed busy"));
        assert_eq!(combined.fleet.as_ref().unwrap(), &fleet);
    }

    #[test]
    fn export_mirrors_the_bespoke_snapshot() {
        let recorder = MetricsRecorder::new();
        recorder.record_submit(1);
        recorder.record_job(
            Duration::from_micros(10),
            Duration::from_micros(1),
            Some(Duration::from_micros(100)),
        );
        let verify = MetricsRecorder::new();
        let fleet = FleetMetrics {
            shards: 2,
            dead_shards: 0,
            submitted: 1,
            completed: 1,
            remote_cache_hits: 0,
            shed_busy: 0,
            wire_errors: 0,
            journal_events: 0,
        };
        let snap = recorder
            .snapshot(1, 0, 1)
            .with_verify(verify.snapshot_verify(1, 0, 0))
            .with_fleet(fleet);
        let mut out = RegistrySnapshot::new();
        snap.export("service", &mut out);
        // One namespace for all three stages, stable names.
        let submitted = out.get("service.submitted").expect("service.submitted");
        assert_eq!(submitted.class, MetricClass::Deterministic);
        assert_eq!(submitted.value, 1);
        assert!(out.get("service.verify.submitted").is_some());
        assert!(out.get("service.fleet.wire_errors").is_some());
        assert_eq!(
            out.get("service.cache.misses").map(|m| m.value),
            Some(1),
            "cache counters export verbatim"
        );
        // Deterministic-only filtering keeps workload counters, drops timing.
        let det = out.deterministic_only();
        assert!(det.get("service.submitted").is_some());
        assert!(det.get("service.cache.misses").is_none());
    }

    #[test]
    fn combined_render_includes_both_stages() {
        let repair = MetricsRecorder::new();
        let verify = MetricsRecorder::new();
        let combined = repair
            .snapshot(2, 0, 0)
            .with_verify(verify.snapshot_verify(4, 0, 0));
        let text = combined.render();
        assert!(text.contains("service metrics"));
        assert!(text.contains("verify metrics"));
        assert_eq!(combined.verify.as_ref().unwrap().workers, 4);
    }
}
