//! The session engine: each repair session is one small state machine, and
//! thousands of them multiplex over a handful of [`crate::rt`] driver threads.
//!
//! A **session** is the full life of one case through the serving layer:
//!
//! ```text
//! submit ──► sampled ──► verifying ──► (escalated)* ──► done
//!   │            │            │              │
//!   └── repair   └── verify   └── verdict    └── next-rung re-submit
//!       pool         fan-out      await          (Escalate policy)
//! ```
//!
//! Written as an `async` block, every arrow is an await point — the compiler
//! generates the state machine, the [`crate::rt`] runtime schedules it, and the
//! pools' waker-backed tickets ([`crate::RepairTicket`], [`crate::VerifyTicket`],
//! [`crate::RouteTicket`]) connect the two.  What used to park one OS thread per
//! waiting caller now parks a stored waker, so in-flight session count is bounded
//! by memory, not by threads.  `assertsolver::evaluate_model` and
//! `evaluate_ladder` run every case as one such session.
//!
//! The engine adds the operational shell around the raw runtime:
//!
//! * **Gauges** — sessions in flight / peak in flight, spawned / completed /
//!   timed out / aborted tallies, and per-phase transition counters fed by
//!   [`SessionMonitor`] ([`SessionMetrics::render`] shares the
//!   [`crate::metrics::render_block`] formatter with the pool views).
//! * **Deadlines** — [`SessionConfig::deadline`] races every session against a
//!   timer; an expired session is dropped (destructors release its queue slots
//!   and admission budget) and reported as [`SessionOutcome::TimedOut`].
//! * **Cancellation** — [`SessionHandle::cancel`] drops the session future at
//!   the earliest safe point; a fulfilled ticket whose session is gone wakes a
//!   dead task, which the runtime treats as a no-op.
//!
//! ## Determinism
//!
//! The engine adds no nondeterminism: driver count and scheduling order only
//! change *when* a session runs, and everything a session produces is already a
//! pure function of request content (content-derived sampler seeds, content-hash
//! shard placement, pure verdicts).  The async determinism suite pins
//! evaluation results byte-for-byte at 1/2/4/8 drivers, warm or cold caches.

use crate::journal::{JournalEvent, TracerHandle};
use crate::metrics::render_block;
use crate::rt::{env_drivers, with_deadline, Expiry, Runtime, Scope, TaskHandle};
use crate::telemetry::TelemetryHandle;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Driver-thread count used when [`SessionConfig::drivers`] is 0 and the
/// `ASSERTSOLVER_DRIVERS` environment variable is unset.
pub const DEFAULT_DRIVERS: usize = 2;

/// Session-engine tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionConfig {
    /// Driver threads multiplexing the sessions.  `0` = auto: the
    /// `ASSERTSOLVER_DRIVERS` environment override ([`crate::rt::DRIVERS_ENV`]),
    /// else [`DEFAULT_DRIVERS`].  Results never depend on this; only wall-clock
    /// and memory profile do.
    pub drivers: usize,
    /// Per-session deadline, measured from spawn.  A session still pending when
    /// it expires is dropped (releasing everything it holds) and reported as
    /// [`SessionOutcome::TimedOut`].  `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Journal tracer the engine (and its runtime) emit events to; off by
    /// default, in which case instrumented paths cost one branch.  Session
    /// *content* events come from [`crate::SessionSpan`]s the caller owns —
    /// the engine itself only emits volatile scheduling diagnostics.
    pub tracer: TracerHandle,
    /// Telemetry registry the engine's runtime records into (the
    /// `rt.poll.duration` histogram); off by default, in which case the poll
    /// loop pays one branch per task poll.
    pub telemetry: TelemetryHandle,
}

impl SessionConfig {
    /// Returns the config with the driver count replaced (`0` = auto).
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers;
        self
    }

    /// Returns the config with the per-session deadline replaced.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the config with the journal tracer replaced.
    pub fn with_tracer(mut self, tracer: TracerHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Returns the config with the telemetry handle replaced.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The driver count this config resolves to.
    pub fn resolved_drivers(&self) -> usize {
        if self.drivers == 0 {
            env_drivers().unwrap_or(DEFAULT_DRIVERS)
        } else {
            self.drivers
        }
    }
}

/// How one session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome<T> {
    /// The session ran its state machine to `done`.
    Completed(T),
    /// The per-session deadline fired first; the session was dropped pending.
    TimedOut,
    /// The session was cancelled before completing.
    Aborted,
    /// The session's future panicked while being polled.  A crash is not a
    /// cancellation: callers retrying `Aborted` sessions must not blindly
    /// retry a `Panicked` one into the same failure.
    Panicked,
}

impl<T> SessionOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            SessionOutcome::Completed(value) => Some(value),
            _ => None,
        }
    }

    /// Whether the session completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed(_))
    }
}

/// The observable phases of a repair session's state machine; sessions report
/// transitions through a [`SessionMonitor`] and the engine tallies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// The repair request has been accepted by a pool.
    Submitted,
    /// The model's samples arrived (repair ticket fulfilled).
    Sampled,
    /// Candidates are fanned out to / awaited from the verify pool.
    Verifying,
    /// A verdict-triggered re-submit walked the session up an escalation rung.
    Escalated,
    /// The session produced its result.
    Done,
}

struct SessionRecorder {
    journal_events: AtomicU64,
    spawned: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    aborted: AtomicU64,
    panicked: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    submitted: AtomicU64,
    sampled: AtomicU64,
    verifying: AtomicU64,
    escalated: AtomicU64,
    done: AtomicU64,
}

impl SessionRecorder {
    fn new() -> Self {
        Self {
            journal_events: AtomicU64::new(0),
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            verifying: AtomicU64::new(0),
            escalated: AtomicU64::new(0),
            done: AtomicU64::new(0),
        }
    }

    fn phase_counter(&self, phase: SessionPhase) -> &AtomicU64 {
        match phase {
            SessionPhase::Submitted => &self.submitted,
            SessionPhase::Sampled => &self.sampled,
            SessionPhase::Verifying => &self.verifying,
            SessionPhase::Escalated => &self.escalated,
            SessionPhase::Done => &self.done,
        }
    }
}

/// Cheap cloneable handle sessions use to report state-machine transitions
/// back to their engine's gauges.
#[derive(Clone)]
pub struct SessionMonitor {
    recorder: Arc<SessionRecorder>,
}

impl SessionMonitor {
    /// Records one transition into `phase`.
    pub fn phase(&self, phase: SessionPhase) {
        self.recorder
            .phase_counter(phase)
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of the session engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SessionMetrics {
    /// Driver threads multiplexing the sessions.
    pub drivers: usize,
    /// Sessions ever spawned.
    pub spawned: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions dropped by their deadline.
    pub timed_out: u64,
    /// Sessions cancelled.
    pub aborted: u64,
    /// Sessions whose future panicked while being polled.
    pub panicked: u64,
    /// Sessions currently in flight (spawned, not yet finished).
    pub in_flight_sessions: u64,
    /// Highest concurrent in-flight session count observed — with async
    /// multiplexing this exceeds the driver count by orders of magnitude.
    pub peak_in_flight_sessions: u64,
    /// Transitions into [`SessionPhase::Submitted`].
    pub phase_submitted: u64,
    /// Transitions into [`SessionPhase::Sampled`].
    pub phase_sampled: u64,
    /// Transitions into [`SessionPhase::Verifying`].
    pub phase_verifying: u64,
    /// Transitions into [`SessionPhase::Escalated`].
    pub phase_escalated: u64,
    /// Transitions into [`SessionPhase::Done`].
    pub phase_done: u64,
    /// Diagnostics the engine emitted to an installed [`crate::Tracer`]; zero
    /// while journaling is off.
    pub journal_events: u64,
}

impl SessionMetrics {
    /// The aligned rows behind [`SessionMetrics::render`].
    pub fn rows(&self) -> Vec<(&'static str, String)> {
        vec![
            ("drivers", format!("{:>10}", self.drivers)),
            ("spawned", format!("{:>10}", self.spawned)),
            (
                "finished",
                format!(
                    "{:>10} completed, {} timed out, {} aborted, {} panicked",
                    self.completed, self.timed_out, self.aborted, self.panicked
                ),
            ),
            (
                "in flight",
                format!(
                    "{:>10} now (peak {})",
                    self.in_flight_sessions, self.peak_in_flight_sessions
                ),
            ),
            (
                "phases",
                format!(
                    "{:>10} submitted, {} sampled, {} verifying, {} escalated, {} done",
                    self.phase_submitted,
                    self.phase_sampled,
                    self.phase_verifying,
                    self.phase_escalated,
                    self.phase_done
                ),
            ),
            (
                "journal",
                format!("{:>10} events emitted", self.journal_events),
            ),
        ]
    }

    /// Renders the snapshot through the shared [`render_block`] formatter, so
    /// the session view composes with the pool and router views.
    pub fn render(&self) -> String {
        render_block("session metrics", &self.rows())
    }
}

/// Releases the in-flight gauge when a session ends *however* it ends —
/// completion, timeout, cancellation, panic, or a runtime torn down mid-flight.
struct SessionGauge {
    recorder: Arc<SessionRecorder>,
    finished: bool,
}

impl SessionGauge {
    fn start(recorder: &Arc<SessionRecorder>) -> Self {
        recorder.spawned.fetch_add(1, Ordering::Relaxed);
        let now = recorder.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        recorder.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        Self {
            recorder: Arc::clone(recorder),
            finished: false,
        }
    }

    fn finish(&mut self, counter: impl Fn(&SessionRecorder) -> &AtomicU64) {
        counter(&self.recorder).fetch_add(1, Ordering::Relaxed);
        self.finished = true;
    }
}

impl Drop for SessionGauge {
    fn drop(&mut self) {
        if !self.finished {
            // Dropped without a recorded ending: cancelled or panicked.
            self.recorder.aborted.fetch_add(1, Ordering::Relaxed);
        }
        self.recorder.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Catches panics escaping a session future's `poll`, turning a crash into a
/// value the engine can count and journal separately from cancellation.
///
/// Without this, a panicking session unwound into the runtime's task-level
/// `catch_unwind`, the completer slot was dropped, and
/// [`SessionHandle::join`] conflated the crash with a deliberate
/// [`SessionHandle::cancel`] by reporting [`SessionOutcome::Aborted`].
struct CatchPanic<F> {
    inner: std::pin::Pin<Box<F>>,
}

impl<F: Future> Future for CatchPanic<F> {
    type Output = Result<F::Output, ()>;

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let inner = self.inner.as_mut();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(std::task::Poll::Ready(value)) => std::task::Poll::Ready(Ok(value)),
            Ok(std::task::Poll::Pending) => std::task::Poll::Pending,
            Err(_) => std::task::Poll::Ready(Err(())),
        }
    }
}

/// Await-handle for one spawned session.
pub struct SessionHandle<T> {
    inner: TaskHandle<SessionOutcome<T>>,
}

impl<T> SessionHandle<T> {
    /// Blocks until the session ends, returning how it ended.
    ///
    /// A panicking session reports [`SessionOutcome::Panicked`] (the panic is
    /// caught at the session boundary); only cancellation — or a runtime torn
    /// down mid-flight — reports [`SessionOutcome::Aborted`].
    pub fn join(self) -> SessionOutcome<T> {
        self.inner.join().unwrap_or(SessionOutcome::Aborted)
    }

    /// Requests cancellation: the session's future is dropped at the earliest
    /// safe point, releasing its queue slots and admission budget; joining then
    /// reports [`SessionOutcome::Aborted`].
    pub fn cancel(&self) {
        self.inner.cancel();
    }

    /// Whether the session has ended (completed, timed out, cancelled).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// The session engine: a [`Runtime`] plus session gauges, deadlines and the
/// state-machine monitor.
pub struct SessionEngine {
    runtime: Runtime,
    recorder: Arc<SessionRecorder>,
    config: SessionConfig,
}

impl SessionEngine {
    /// Starts the driver threads, handing the runtime the configured tracer
    /// (so scheduling diagnostics land in the same journal as session events)
    /// and the configured telemetry handle (so task polls time themselves into
    /// the `rt.poll.duration` histogram).
    pub fn new(config: SessionConfig) -> Self {
        let runtime = Runtime::with_hooks(
            config.resolved_drivers(),
            config.tracer.clone(),
            &config.telemetry,
        );
        Self {
            runtime,
            recorder: Arc::new(SessionRecorder::new()),
            config,
        }
    }

    /// Number of driver threads.
    pub fn drivers(&self) -> usize {
        self.runtime.drivers()
    }

    /// The underlying runtime (for scoped spawns and timers).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// A cloneable handle sessions use to report state-machine transitions.
    pub fn monitor(&self) -> SessionMonitor {
        SessionMonitor {
            recorder: Arc::clone(&self.recorder),
        }
    }

    /// Takes a metrics snapshot.
    pub fn metrics(&self) -> SessionMetrics {
        SessionMetrics {
            drivers: self.runtime.drivers(),
            spawned: self.recorder.spawned.load(Ordering::Relaxed),
            completed: self.recorder.completed.load(Ordering::Relaxed),
            timed_out: self.recorder.timed_out.load(Ordering::Relaxed),
            aborted: self.recorder.aborted.load(Ordering::Relaxed),
            panicked: self.recorder.panicked.load(Ordering::Relaxed),
            in_flight_sessions: self.recorder.in_flight.load(Ordering::Relaxed),
            peak_in_flight_sessions: self.recorder.peak_in_flight.load(Ordering::Relaxed),
            phase_submitted: self.recorder.submitted.load(Ordering::Relaxed),
            phase_sampled: self.recorder.sampled.load(Ordering::Relaxed),
            phase_verifying: self.recorder.verifying.load(Ordering::Relaxed),
            phase_escalated: self.recorder.escalated.load(Ordering::Relaxed),
            phase_done: self.recorder.done.load(Ordering::Relaxed),
            journal_events: self.recorder.journal_events.load(Ordering::Relaxed),
        }
    }

    /// Spawns one session into `scope` (a [`Runtime::scope`] of this engine's
    /// runtime), wrapping it with the in-flight gauge and the configured
    /// deadline.  The session future may borrow from the scope's environment.
    pub fn spawn_session<'scope, 'env, T, F>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        session: F,
    ) -> SessionHandle<T>
    where
        F: Future<Output = T> + Send + 'env,
        T: Send + 'env,
    {
        let mut gauge = SessionGauge::start(&self.recorder);
        if self.config.tracer.is_on() {
            // Volatile diagnostic: which engine slot a session spawned into is
            // interleaving-dependent, so it never enters the deterministic
            // journal — content events come from the caller's `SessionSpan`.
            self.recorder.journal_events.fetch_add(1, Ordering::Relaxed);
            self.config.tracer.diagnostic(
                self.recorder.spawned.load(Ordering::Relaxed),
                JournalEvent::Span {
                    name: "session-spawn".to_string(),
                    parent: None,
                },
            );
        }
        let deadline = self
            .config
            .deadline
            .map(|deadline| self.runtime.sleep(deadline));
        let session = CatchPanic {
            inner: Box::pin(session),
        };
        let inner = scope.spawn(async move {
            match deadline {
                Some(sleep) => match with_deadline(session, sleep).await {
                    Expiry::Completed(Ok(value)) => {
                        gauge.finish(|r| &r.completed);
                        SessionOutcome::Completed(value)
                    }
                    Expiry::Completed(Err(())) => {
                        gauge.finish(|r| &r.panicked);
                        SessionOutcome::Panicked
                    }
                    Expiry::Expired => {
                        gauge.finish(|r| &r.timed_out);
                        SessionOutcome::TimedOut
                    }
                },
                None => match session.await {
                    Ok(value) => {
                        gauge.finish(|r| &r.completed);
                        SessionOutcome::Completed(value)
                    }
                    Err(()) => {
                        gauge.finish(|r| &r.panicked);
                        SessionOutcome::Panicked
                    }
                },
            }
        });
        SessionHandle { inner }
    }

    /// Runs one session per future — all multiplexed over the drivers — and
    /// returns the outcomes in input order.  Sessions may borrow from the
    /// caller's stack; the call blocks until every session has ended.
    pub fn run_all<'env, T, F>(&'env self, sessions: Vec<F>) -> Vec<SessionOutcome<T>>
    where
        F: Future<Output = T> + Send + 'env,
        T: Send + 'env,
    {
        self.runtime.scope(|scope| {
            let handles: Vec<SessionHandle<T>> = sessions
                .into_iter()
                .map(|session| self.spawn_session(scope, session))
                .collect();
            handles.into_iter().map(SessionHandle::join).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sessions_complete_in_input_order_over_few_drivers() {
        let engine = SessionEngine::new(SessionConfig::default().with_drivers(2));
        let sessions: Vec<_> = (0..256).map(|i| async move { i * 3 }).collect();
        let outcomes = engine.run_all(sessions);
        assert_eq!(outcomes.len(), 256);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            assert_eq!(outcome.completed(), Some(i * 3));
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.drivers, 2);
        assert_eq!(metrics.spawned, 256);
        assert_eq!(metrics.completed, 256);
        assert_eq!(metrics.in_flight_sessions, 0);
        assert!(metrics.peak_in_flight_sessions >= 1);
    }

    #[test]
    fn deadline_expires_stuck_sessions_and_releases_the_gauge() {
        let engine = SessionEngine::new(
            SessionConfig::default()
                .with_drivers(1)
                .with_deadline(Duration::from_millis(20)),
        );
        let sessions: Vec<std::pin::Pin<Box<dyn Future<Output = usize> + Send>>> = vec![
            Box::pin(async { std::future::pending::<usize>().await }),
            Box::pin(async { 9 }),
        ];
        let outcomes = engine.run_all(sessions);
        assert_eq!(outcomes[0], SessionOutcome::TimedOut);
        assert_eq!(outcomes[1], SessionOutcome::Completed(9));
        let metrics = engine.metrics();
        assert_eq!(metrics.timed_out, 1);
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.in_flight_sessions, 0);
    }

    #[test]
    fn monitor_tallies_phase_transitions() {
        let engine = SessionEngine::new(SessionConfig::default().with_drivers(1));
        let monitor = engine.monitor();
        let sessions: Vec<_> = (0..4)
            .map(|_| {
                let monitor = monitor.clone();
                async move {
                    monitor.phase(SessionPhase::Submitted);
                    monitor.phase(SessionPhase::Sampled);
                    monitor.phase(SessionPhase::Verifying);
                    monitor.phase(SessionPhase::Done);
                }
            })
            .collect();
        engine.run_all(sessions);
        let metrics = engine.metrics();
        assert_eq!(metrics.phase_submitted, 4);
        assert_eq!(metrics.phase_sampled, 4);
        assert_eq!(metrics.phase_verifying, 4);
        assert_eq!(metrics.phase_escalated, 0);
        assert_eq!(metrics.phase_done, 4);
        assert!(metrics.render().contains("session metrics"));
    }

    #[test]
    fn cancelled_sessions_report_aborted_and_release_the_gauge() {
        let engine = SessionEngine::new(SessionConfig::default().with_drivers(1));
        let touched = AtomicUsize::new(0);
        let outcome = engine.runtime().scope(|scope| {
            let stuck = engine.spawn_session(scope, async {
                touched.fetch_add(1, Ordering::SeqCst);
                std::future::pending::<usize>().await
            });
            // Let the driver park it, then cancel.
            while touched.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            stuck.cancel();
            stuck.join()
        });
        assert_eq!(outcome, SessionOutcome::Aborted);
        let metrics = engine.metrics();
        assert_eq!(metrics.aborted, 1);
        assert_eq!(metrics.in_flight_sessions, 0);
    }

    #[test]
    fn panicked_sessions_report_panicked_not_aborted() {
        // Regression: a panicking session future used to unwind into the
        // runtime's task-level catch_unwind and join as `Aborted`,
        // indistinguishable from a deliberate cancel.
        let engine = SessionEngine::new(SessionConfig::default().with_drivers(1));
        let sessions: Vec<std::pin::Pin<Box<dyn Future<Output = usize> + Send>>> = vec![
            Box::pin(async { panic!("session crash") }),
            Box::pin(async { 7 }),
        ];
        let outcomes = engine.run_all(sessions);
        assert_eq!(outcomes[0], SessionOutcome::Panicked);
        assert_eq!(outcomes[1], SessionOutcome::Completed(7));
        let metrics = engine.metrics();
        assert_eq!(metrics.panicked, 1);
        assert_eq!(metrics.aborted, 0, "a crash is not a cancellation");
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.in_flight_sessions, 0);
        assert!(metrics.render().contains("panicked"));
    }

    #[test]
    fn many_more_sessions_than_drivers_are_in_flight_at_once() {
        // A release/acquire pair: sessions block on a oneshot the main thread
        // fulfils only after observing the full in-flight count.
        let engine = SessionEngine::new(SessionConfig::default().with_drivers(2));
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sessions: Vec<_> = (0..512)
            .map(|i| {
                let gate = Arc::clone(&gate);
                async move {
                    std::future::poll_fn(|cx| {
                        if gate.load(Ordering::Acquire) {
                            std::task::Poll::Ready(())
                        } else {
                            cx.waker().wake_by_ref(); // busy-ish re-poll keeps it simple
                            std::task::Poll::Pending
                        }
                    })
                    .await;
                    i
                }
            })
            .collect();
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                gate.store(true, Ordering::Release);
            })
        };
        let outcomes = engine.run_all(sessions);
        opener.join().unwrap();
        assert!(outcomes.iter().all(|o| o.is_completed()));
        let metrics = engine.metrics();
        assert!(
            metrics.peak_in_flight_sessions >= 256,
            "peak in-flight ({}) must vastly exceed the 2 drivers",
            metrics.peak_in_flight_sessions
        );
    }
}
