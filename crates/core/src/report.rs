//! Text rendering of the paper's tables and figures.
//!
//! Every experiment binary in `assertsolver-bench` formats its output through these
//! helpers so the regenerated tables share one look and can be diffed run-to-run.

use crate::evaluate::ModelEvaluation;
use crate::passk::PassK;

/// Renders a Table-III style comparison (rows = models, columns = pass@1 / pass@5).
pub fn render_passk_table(title: &str, rows: &[(String, PassK)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<28} {:>10} {:>10}\n",
        "Model", "pass@1(%)", "pass@5(%)"
    ));
    for (name, passk) in rows {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2}\n",
            name,
            passk.pass1_percent(),
            passk.pass5_percent()
        ));
    }
    out
}

/// Renders a Table-IV style comparison with machine / human / combined columns.
pub fn render_split_table(title: &str, rows: &[(String, PassK, PassK, PassK)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<28} {:>22} {:>22} {:>22}\n",
        "Model", "SVA-Eval-Machine", "SVA-Eval-Human", "SVA-Eval"
    ));
    out.push_str(&format!(
        "{:<28} {:>10} {:>11} {:>10} {:>11} {:>10} {:>11}\n",
        "", "pass@1(%)", "pass@5(%)", "pass@1(%)", "pass@5(%)", "pass@1(%)", "pass@5(%)"
    ));
    for (name, machine, human, all) in rows {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>11.2} {:>10.2} {:>11.2} {:>10.2} {:>11.2}\n",
            name,
            machine.pass1_percent(),
            machine.pass5_percent(),
            human.pass1_percent(),
            human.pass5_percent(),
            all.pass1_percent(),
            all.pass5_percent()
        ));
    }
    out
}

/// Renders a Fig.-3 style histogram of the number of correct answers per case.
pub fn render_histogram(
    title: &str,
    evaluations: &[(&str, &ModelEvaluation)],
    samples: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<6}", "c"));
    for (name, _) in evaluations {
        out.push_str(&format!(" {:>16}", name));
    }
    out.push('\n');
    for c in 0..=samples {
        out.push_str(&format!("{:<6}", c));
        for (_, eval) in evaluations {
            let hist = eval.histogram(samples);
            out.push_str(&format!(" {:>16}", hist[c]));
        }
        out.push('\n');
    }
    out
}

/// Renders a Fig.-4/Fig.-5 style grouped breakdown: pass@k per bug type and per
/// code-length interval for several models.
pub fn render_breakdown(
    title: &str,
    evaluations: &[(&str, &ModelEvaluation)],
    k_label: &str,
    select: impl Fn(&PassK) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title} ({k_label}, %)\n"));
    // Bug types.
    out.push_str(&format!("{:<14}", "Bug type"));
    for (name, _) in evaluations {
        out.push_str(&format!(" {:>16}", name));
    }
    out.push('\n');
    for label in [
        "Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond",
    ] {
        out.push_str(&format!("{:<14}", label));
        for (_, eval) in evaluations {
            let value = eval
                .by_bug_type()
                .get(label)
                .map(|p| select(p) * 100.0)
                .unwrap_or(f64::NAN);
            out.push_str(&format!(" {:>16.2}", value));
        }
        out.push('\n');
    }
    // Length bins.
    out.push_str(&format!("{:<14}", "Length"));
    for (name, _) in evaluations {
        out.push_str(&format!(" {:>16}", name));
    }
    out.push('\n');
    for bin in svgen::LENGTH_BINS {
        out.push_str(&format!("{:<14}", bin));
        for (_, eval) in evaluations {
            let value = eval
                .by_length_bin()
                .into_iter()
                .find(|(name, _)| name == bin)
                .map(|(_, p)| select(&p) * 100.0)
                .unwrap_or(f64::NAN);
            out.push_str(&format!(" {:>16.2}", value));
        }
        out.push('\n');
    }
    out
}

/// Renders the Table-II style distribution of a dataset.
pub fn render_distribution(title: &str, rows: &[(&str, svdata::Distribution)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{:<12}", "Dataset"));
    for bin in svgen::LENGTH_BINS {
        out.push_str(&format!(" {:>12}", bin));
    }
    out.push_str(&format!(" {:>8}\n", "total"));
    for (name, dist) in rows {
        out.push_str(&format!("{:<12}", name));
        for count in dist.per_length_bin {
            out.push_str(&format!(" {:>12}", count));
        }
        out.push_str(&format!(" {:>8}\n", dist.total));
    }
    out.push_str(&format!("{:<12}", "Bug type"));
    for label in [
        "Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond",
    ] {
        out.push_str(&format!(" {:>9}", label));
    }
    out.push('\n');
    for (name, dist) in rows {
        out.push_str(&format!("{:<12}", name));
        for label in [
            "Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond",
        ] {
            out.push_str(&format!(
                " {:>9}",
                dist.per_bug_type.get(label).copied().unwrap_or(0)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passk_table_formats_rows() {
        let rows = vec![
            (
                "Base model".to_string(),
                PassK {
                    pass1: 0.04,
                    pass5: 0.15,
                    problems: 10,
                },
            ),
            (
                "AssertSolver".to_string(),
                PassK {
                    pass1: 0.88,
                    pass5: 0.9,
                    problems: 10,
                },
            ),
        ];
        let table = render_passk_table("Table III", &rows);
        assert!(table.contains("Table III"));
        assert!(table.contains("AssertSolver"));
        assert!(table.contains("88.00"));
    }

    #[test]
    fn split_table_has_three_column_groups() {
        let p = PassK {
            pass1: 0.5,
            pass5: 0.6,
            problems: 4,
        };
        let table = render_split_table("Table IV", &[("M".to_string(), p, p, p)]);
        assert!(table.contains("SVA-Eval-Machine"));
        assert!(table.contains("SVA-Eval-Human"));
        assert_eq!(table.matches("50.00").count(), 3);
    }

    #[test]
    fn histogram_has_samples_plus_one_rows() {
        let eval = ModelEvaluation {
            model: "m".into(),
            results: vec![],
        };
        let text = render_histogram("Fig 3", &[("m", &eval)], 20);
        assert_eq!(text.lines().count(), 2 + 21);
    }

    #[test]
    fn distribution_table_mentions_all_bins() {
        let dist = svdata::Distribution::default();
        let text = render_distribution("Table II", &[("SVA-Bug", dist)]);
        for bin in svgen::LENGTH_BINS {
            assert!(text.contains(bin));
        }
        assert!(text.contains("Non_cond"));
    }
}
