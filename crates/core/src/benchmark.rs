//! SVA-Eval benchmark construction.
//!
//! SVA-Eval has two parts in the paper: 877 machine-generated cases (the held-out 10 %
//! of the augmentation pipeline) and 38 human-crafted cases derived from the RTLLM
//! dataset.  Here the machine part comes from [`svdata::split_by_module`]'s evaluation
//! side, and the human part is a set of hand-written golden/buggy design pairs in the
//! same spirit (realistic small IP blocks with realistic bug stories), validated by the
//! same simulator so every case carries genuine failure logs.

use serde::{Deserialize, Serialize};
use svdata::SvaBugEntry;
use svmutate::{
    classify_visibility, single_line_diff, BugKind, BugProfile, Structural, Visibility,
};
use svparse::{emit_module, parse_module};
use svsim::failing_assertions_in_log;
use svverify::{CheckConfig, Verdict, VerifyOracle};

/// The full SVA-Eval benchmark.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SvaEval {
    /// Machine-generated cases (held-out pipeline output).
    pub machine: Vec<SvaBugEntry>,
    /// Human-crafted cases.
    pub human: Vec<SvaBugEntry>,
}

impl SvaEval {
    /// Builds the benchmark from held-out machine cases plus the built-in human set.
    pub fn build(machine: Vec<SvaBugEntry>) -> Self {
        Self {
            machine,
            human: human_crafted_cases(),
        }
    }

    /// All cases, machine first then human.
    pub fn all(&self) -> Vec<SvaBugEntry> {
        let mut out = self.machine.clone();
        out.extend(self.human.clone());
        out
    }

    /// Total number of cases.
    pub fn len(&self) -> usize {
        self.machine.len() + self.human.len()
    }

    /// Returns `true` when the benchmark has no cases.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One hand-written benchmark story: golden design, buggy design, spec and labels.
struct HumanCase {
    spec_function: &'static str,
    golden: &'static str,
    buggy: &'static str,
    kind: BugKind,
    structural: Structural,
    affected: &'static str,
}

/// Builds the human-crafted portion of SVA-Eval.
///
/// Every case is validated on construction: the golden design must pass its assertions
/// and the buggy design must fail them under the bounded checker; cases that do not
/// validate are dropped (the returned set is therefore always sound).
pub fn human_crafted_cases() -> Vec<SvaBugEntry> {
    let oracle = VerifyOracle::new(CheckConfig {
        depth: 12,
        random_cases: 24,
        ..CheckConfig::default()
    });
    human_case_definitions()
        .into_iter()
        .filter_map(|case| build_human_entry(&oracle, &case))
        .collect()
}

fn build_human_entry(oracle: &VerifyOracle, case: &HumanCase) -> Option<SvaBugEntry> {
    let golden = parse_module(case.golden).ok()?;
    let buggy = parse_module(case.buggy).ok()?;
    let golden_text = emit_module(&golden);
    let buggy_text = emit_module(&buggy);
    if !oracle.repair_solves_failure(&golden) {
        return None;
    }
    let verdict = oracle.bug_triggers_failure(&buggy).ok()??;
    let Verdict::Fail { witness, .. } = verdict else {
        return None;
    };
    let outcome = svsim::simulate(&buggy, &witness).ok()?;
    let diff = single_line_diff(&golden_text, &buggy_text)?;
    let failing = failing_assertions_in_log(&outcome.log);
    let visibility = classify_visibility(&golden, &[case.affected.to_string()], &failing);
    let spec = svgen::render_spec(&golden, case.spec_function);
    Some(SvaBugEntry {
        module_name: golden.name.clone(),
        spec,
        buggy_source: buggy_text.clone(),
        golden_source: golden_text,
        logs: outcome.log,
        failing_assertions: failing,
        bug_line_number: diff.line,
        buggy_line: diff.buggy_line,
        fixed_line: diff.golden_line,
        profile: BugProfile::new(case.kind, case.structural, visibility),
        cot: None,
        code_lines: buggy_text.lines().count(),
        human_crafted: true,
    })
}

fn human_case_definitions() -> Vec<HumanCase> {
    vec![
        // 1. The paper's Fig. 1 accumulator with the inverted valid_out condition.
        HumanCase {
            spec_function: "An accumulator that asserts valid_out for one cycle after every fourth valid input beat",
            golden: r#"
module accu_human(input clk, input rst_n, input valid_in, output reg valid_out);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
endmodule
"#,
            buggy: r#"
module accu_human(input clk, input rst_n, input valid_in, output reg valid_out);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (!end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
endmodule
"#,
            kind: BugKind::Op,
            structural: Structural::Cond,
            affected: "valid_out",
        },
        // 2. Handshake register with the wrong data source (Var bug).
        HumanCase {
            spec_function: "A ready/valid capture register that stores data_in when the handshake fires",
            golden: r#"
module capture_human(input clk, input rst_n, input valid, input ready, input [7:0] data_in, output reg [7:0] data_q, output fire);
  assign fire = valid && ready;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) data_q <= 8'd0;
    else if (fire) data_q <= data_in;
  end
  property captured;
    @(posedge clk) disable iff (!rst_n) fire |=> data_q == $past(data_in);
  endproperty
  captured_check: assert property (captured) else $error("data_q must capture data_in on a fire");
endmodule
"#,
            buggy: r#"
module capture_human(input clk, input rst_n, input valid, input ready, input [7:0] data_in, output reg [7:0] data_q, output fire);
  assign fire = valid && ready;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) data_q <= 8'd0;
    else if (fire) data_q <= data_q;
  end
  property captured;
    @(posedge clk) disable iff (!rst_n) fire |=> data_q == $past(data_in);
  endproperty
  captured_check: assert property (captured) else $error("data_q must capture data_in on a fire");
endmodule
"#,
            kind: BugKind::Var,
            structural: Structural::NonCond,
            affected: "data_q",
        },
        // 3. Counter with a wrong terminal value (Value bug, indirect).
        HumanCase {
            spec_function: "A modulo-10 decade counter that wraps to zero after counting nine",
            golden: r#"
module decade_human(input clk, input rst_n, input en, output reg [3:0] count, output wrap);
  assign wrap = count == 4'd9;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 4'd0;
    else if (en) begin
      if (wrap) count <= 4'd0;
      else count <= count + 4'd1;
    end
  end
  property never_exceeds_nine;
    @(posedge clk) disable iff (!rst_n) count <= 4'd9;
  endproperty
  never_exceeds_nine_check: assert property (never_exceeds_nine) else $error("a decade counter must stay below ten");
endmodule
"#,
            buggy: r#"
module decade_human(input clk, input rst_n, input en, output reg [3:0] count, output wrap);
  assign wrap = count == 4'd12;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) count <= 4'd0;
    else if (en) begin
      if (wrap) count <= 4'd0;
      else count <= count + 4'd1;
    end
  end
  property never_exceeds_nine;
    @(posedge clk) disable iff (!rst_n) count <= 4'd9;
  endproperty
  never_exceeds_nine_check: assert property (never_exceeds_nine) else $error("a decade counter must stay below ten");
endmodule
"#,
            kind: BugKind::Value,
            structural: Structural::NonCond,
            affected: "wrap",
        },
        // 4. Priority arbiter granting the wrong requester (Op bug on a mask).
        HumanCase {
            spec_function: "A two-requester fixed-priority arbiter where requester zero always wins",
            golden: r#"
module arb_human(input clk, input [1:0] req, output [1:0] grant);
  assign grant[0] = req[0];
  assign grant[1] = req[1] && !req[0];
  property exclusive;
    @(posedge clk) !(grant[0] && grant[1]);
  endproperty
  exclusive_check: assert property (exclusive) else $error("grants must be one-hot");
endmodule
"#,
            buggy: r#"
module arb_human(input clk, input [1:0] req, output [1:0] grant);
  assign grant[0] = req[0];
  assign grant[1] = req[1] && req[0];
  property exclusive;
    @(posedge clk) !(grant[0] && grant[1]);
  endproperty
  exclusive_check: assert property (exclusive) else $error("grants must be one-hot");
endmodule
"#,
            kind: BugKind::Op,
            structural: Structural::NonCond,
            affected: "grant",
        },
        // 5. Saturating counter whose guard tests the wrong signal (Var bug in a condition).
        HumanCase {
            spec_function: "A saturating credit counter that must stop incrementing once it reaches its limit",
            golden: r#"
module credit_human(input clk, input rst_n, input inc, output reg [2:0] credits, output maxed);
  assign maxed = credits == 3'd6;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) credits <= 3'd0;
    else if (inc && !maxed) credits <= credits + 3'd1;
  end
  property bounded;
    @(posedge clk) disable iff (!rst_n) credits <= 3'd6;
  endproperty
  bounded_check: assert property (bounded) else $error("credits must saturate at six");
endmodule
"#,
            buggy: r#"
module credit_human(input clk, input rst_n, input inc, output reg [2:0] credits, output maxed);
  assign maxed = credits == 3'd6;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) credits <= 3'd0;
    else if (inc && !rst_n) credits <= credits + 3'd1;
  end
  property bounded;
    @(posedge clk) disable iff (!rst_n) credits <= 3'd6;
  endproperty
  bounded_check: assert property (bounded) else $error("credits must saturate at six");
endmodule
"#,
            kind: BugKind::Var,
            structural: Structural::Cond,
            affected: "credits",
        },
        // 6. Parity checker with the wrong reduction operator (Op bug, direct).
        HumanCase {
            spec_function: "An even-parity flag generator over an eight-bit data word",
            golden: r#"
module parity_human(input clk, input [7:0] data, output parity_ok);
  wire parity_bit;
  assign parity_bit = ^data;
  assign parity_ok = parity_bit == 1'b0;
  property matches_reduction;
    @(posedge clk) parity_ok == ((^data) == 1'b0);
  endproperty
  matches_reduction_check: assert property (matches_reduction) else $error("parity_ok must reflect the XOR reduction");
endmodule
"#,
            buggy: r#"
module parity_human(input clk, input [7:0] data, output parity_ok);
  wire parity_bit;
  assign parity_bit = &data;
  assign parity_ok = parity_bit == 1'b0;
  property matches_reduction;
    @(posedge clk) parity_ok == ((^data) == 1'b0);
  endproperty
  matches_reduction_check: assert property (matches_reduction) else $error("parity_ok must reflect the XOR reduction");
endmodule
"#,
            kind: BugKind::Op,
            structural: Structural::NonCond,
            affected: "parity_bit",
        },
    ]
}

/// Sanity check used by the human-case tests: the buggy line must differ and the bug
/// must be labelled `Cond` only when the edit is inside a condition.
pub fn human_case_is_consistent(entry: &SvaBugEntry) -> bool {
    entry.buggy_line != entry.fixed_line
        && entry.human_crafted
        && !entry.failing_assertions.is_empty()
        && (entry.profile.structural != Structural::Cond
            || entry.buggy_line.contains("if (")
            || entry.buggy_line.contains("case ("))
        && (entry.profile.visibility == Visibility::Direct
            || entry.profile.visibility == Visibility::Indirect)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_cases_validate_end_to_end() {
        let cases = human_crafted_cases();
        assert!(
            cases.len() >= 5,
            "expected at least five validated human cases, got {}",
            cases.len()
        );
        for case in &cases {
            assert!(
                human_case_is_consistent(case),
                "inconsistent case: {case:?}"
            );
            assert!(case.logs.contains("failed assertion"));
            assert!(case.bug_line_number >= 1);
        }
    }

    #[test]
    fn human_cases_cover_multiple_bug_kinds() {
        let cases = human_crafted_cases();
        let kinds: std::collections::BTreeSet<String> =
            cases.iter().map(|c| c.profile.kind.to_string()).collect();
        assert!(kinds.len() >= 2, "kinds covered: {kinds:?}");
    }

    #[test]
    fn benchmark_concatenates_machine_and_human() {
        let eval = SvaEval::build(Vec::new());
        assert_eq!(eval.machine.len(), 0);
        assert!(!eval.is_empty());
        assert_eq!(eval.len(), eval.human.len());
        assert_eq!(eval.all().len(), eval.len());
    }

    #[test]
    fn fig1_case_is_present_and_indirectly_visible() {
        let cases = human_crafted_cases();
        let fig1 = cases
            .iter()
            .find(|c| c.module_name == "accu_human")
            .expect("Fig. 1 case must validate");
        assert!(fig1.buggy_line.contains("!end_cnt"));
        assert!(fig1.fixed_line.contains("end_cnt"));
        assert_eq!(fig1.profile.kind, BugKind::Op);
    }
}
