//! Model evaluation: sampling, correctness checking, pass@k and breakdowns.
//!
//! A response counts as correct when it "successfully solves the assertion failure":
//! either it reproduces the golden fix textually, or applying its proposed line edit to
//! the buggy design makes every assertion pass under the bounded checker.  This is the
//! same acceptance criterion the paper uses for its pass@k numbers.

use crate::passk::PassK;
use serde::{Deserialize, Serialize};
use std::collections::btree_map::Entry as BTreeEntry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::{CaseInput, RepairModel, Response};
use svserve::persist::fnv64;
use svserve::stage as trace_stage;
use svserve::{
    env_cache_dir, env_journal_dir, env_profile_dir, render_journal, serve_scoped, verdict_key,
    write_journal, BackendSpec, CaseKey, CollapsedProfile, EscalationJudge, JournalHeader,
    JournalSink, JournalSpec, JudgeReport, Metric, MetricClass, MetricsRegistry, ModelRouter,
    PersistSpec, RepairRequest, RouteAttempt, RouteMetrics, RoutePolicy, RouterConfig,
    ServiceConfig, SessionConfig, SessionEngine, SessionPhase, SessionSpan, ShardFleet,
    TelemetryHandle, TraceHandle, TraceSpan, TracerHandle, VerdictKey, VerifyConfig, VerifyMetrics,
    VerifyPool, VerifyRequest, VerifyTicket, DEFAULT_COMPACT_AFTER_RUNS,
};
use svverify::{CheckConfig, VerifyOracle};

/// Evaluation protocol parameters (paper: n = 20, k ∈ {1, 5}, temperature 0.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Number of samples per case (`n`).
    pub samples: usize,
    /// Sampling temperature.
    pub temperature: f64,
    /// Seed for sampling.
    pub seed: u64,
    /// Worker threads for the repair service that samples the model
    /// (0 = auto-detect from available parallelism).  Results are identical at any
    /// worker count; this only changes wall-clock time.
    pub workers: usize,
    /// Worker threads for the verification offload pool that judges candidates
    /// (0 = auto: the `ASSERTSOLVER_VERIFY_WORKERS` environment override, else the
    /// `svserve::VerifyConfig` default).  Results are identical at any worker count.
    pub verify_workers: usize,
    /// Driver threads for the async session engine that multiplexes the
    /// per-case repair sessions (0 = auto: the `ASSERTSOLVER_DRIVERS`
    /// environment override, else `svserve::DEFAULT_DRIVERS`).  Results are
    /// identical at any driver count.
    pub drivers: usize,
    /// Directory for persistent cache snapshots (`None` = the
    /// `ASSERTSOLVER_CACHE_DIR` environment override, else no persistence).  When
    /// resolved, both the response and the verdict cache spill to disk there and
    /// preload at the next evaluation, so repeated runs skip resolved cases; a
    /// warm run's `ModelEvaluation` is byte-identical to a cold run's.
    pub cache_dir: Option<String>,
    /// Directory for session-journal artifacts (`None` = the
    /// `ASSERTSOLVER_JOURNAL_DIR` environment override, else no journaling).
    /// When resolved, [`evaluate_model`] records every session's deterministic
    /// events and writes a checksummed JSONL journal there; journal bytes are
    /// identical at any worker/driver count and with warm or cold caches.
    pub journal_dir: Option<String>,
    /// Remote shard fleet to sample against (`None` = the
    /// `ASSERTSOLVER_SHARD_SOCKETS` environment override, else in-process
    /// serving).  When resolved, [`evaluate_model`] submits every case over
    /// the wire to `shard-serve` processes instead of starting a local repair
    /// service; results are byte-identical to the in-process run as long as
    /// the shards serve the same model and seed (the `Hello` fingerprint
    /// handshake enforces the model half).  Verification always runs locally.
    pub shards: Option<ShardSpec>,
    /// Directory for collapsed-stack profile artifacts (`None` = the
    /// `ASSERTSOLVER_PROFILE_DIR` environment override, else no profile
    /// write).  When resolved, [`evaluate_model_profiled`] writes its
    /// flamegraph-compatible `profile-<slug>-<hash>.folded` there (best
    /// effort, like the cache flush paths).
    pub profile_dir: Option<String>,
    /// Bounded-check configuration used to decide whether a repair solves the failure.
    pub check: CheckConfig,
}

/// Where a remote shard fleet lives: one unix-socket path per shard process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// One `shard-serve` socket path per shard; requests place onto shards by
    /// content hash (`svserve::shard_for_key`), so the paths' *order* matters
    /// — every client of one fleet must list them identically.
    pub sockets: Vec<String>,
    /// Per-call read/write timeout in milliseconds; a wedged shard degrades to
    /// a counted error after this long, never a hung evaluation.
    pub timeout_ms: u64,
}

impl ShardSpec {
    /// A spec with the default 30-second call timeout.
    pub fn new(sockets: Vec<String>) -> Self {
        Self {
            sockets,
            timeout_ms: 30_000,
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            samples: 20,
            temperature: 0.2,
            seed: 0xE7A1,
            workers: 0,
            verify_workers: 0,
            drivers: 0,
            cache_dir: None,
            journal_dir: None,
            shards: None,
            profile_dir: None,
            check: CheckConfig {
                depth: 12,
                random_cases: 16,
                ..CheckConfig::default()
            },
        }
    }
}

impl EvalConfig {
    /// A faster protocol for tests and examples (n = 8).
    pub fn quick(seed: u64) -> Self {
        Self {
            samples: 8,
            seed,
            check: CheckConfig {
                depth: 10,
                random_cases: 8,
                ..CheckConfig::default()
            },
            ..Self::default()
        }
    }

    /// The cache directory this protocol persists to, if any: the explicit
    /// [`EvalConfig::cache_dir`] field, else the `ASSERTSOLVER_CACHE_DIR`
    /// environment override (`svserve::CACHE_DIR_ENV`).
    pub fn resolved_cache_dir(&self) -> Option<std::path::PathBuf> {
        self.cache_dir
            .as_deref()
            .map(|raw| raw.trim())
            .filter(|raw| !raw.is_empty())
            .map(std::path::PathBuf::from)
            .or_else(env_cache_dir)
    }

    /// The journal directory this protocol records to, if any: the explicit
    /// [`EvalConfig::journal_dir`] field, else the `ASSERTSOLVER_JOURNAL_DIR`
    /// environment override (`svserve::JOURNAL_DIR_ENV`).
    pub fn resolved_journal_dir(&self) -> Option<std::path::PathBuf> {
        self.journal_dir
            .as_deref()
            .map(|raw| raw.trim())
            .filter(|raw| !raw.is_empty())
            .map(std::path::PathBuf::from)
            .or_else(env_journal_dir)
    }

    /// The profile directory this protocol writes collapsed-stack artifacts
    /// to, if any: the explicit [`EvalConfig::profile_dir`] field, else the
    /// `ASSERTSOLVER_PROFILE_DIR` environment override
    /// (`svserve::PROFILE_DIR_ENV`).
    pub fn resolved_profile_dir(&self) -> Option<std::path::PathBuf> {
        self.profile_dir
            .as_deref()
            .map(|raw| raw.trim())
            .filter(|raw| !raw.is_empty())
            .map(std::path::PathBuf::from)
            .or_else(env_profile_dir)
    }

    /// The remote shard fleet this protocol samples against, if any: the
    /// explicit [`EvalConfig::shards`] field, else the
    /// `ASSERTSOLVER_SHARD_SOCKETS` environment override
    /// (`svserve::SHARD_SOCKETS_ENV`, comma-separated socket paths).
    pub fn resolved_shards(&self) -> Option<ShardSpec> {
        self.shards
            .clone()
            .or_else(|| svserve::env_shard_sockets().map(ShardSpec::new))
    }

    /// The repair-service configuration this protocol implies.
    pub fn service_config(&self) -> ServiceConfig {
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        ServiceConfig::default()
            .with_workers(workers)
            .with_seed(self.seed)
    }

    /// The repair-service configuration for sampling a specific model, including
    /// response-cache persistence when a cache directory is resolved.
    ///
    /// `model_identity` should be [`RepairModel::identity`] — a string that
    /// differs whenever the model's responses could differ (for trained models it
    /// folds a content hash of the weights, so `base(3)` and `base(11)` never
    /// share a snapshot despite sharing a display name).  The snapshot file is
    /// per-identity *and* per-seed (`responses-<slug>-<hash>.json`, the hash
    /// covering identity + evaluation seed), so distinct protocols coexist in
    /// one cache directory instead of rejecting and overwriting each other's
    /// files; the service additionally folds its seed into the snapshot
    /// fingerprint (responses are a deterministic function of
    /// `(case, samples, temperature, model, seed)`), so even a hand-pointed
    /// stale snapshot is rejected at load instead of replaying wrong samples.
    pub fn service_config_for(&self, model_identity: &str) -> ServiceConfig {
        let config = self.service_config();
        match self.resolved_cache_dir() {
            Some(dir) => {
                let mut keyed = model_identity.as_bytes().to_vec();
                keyed.push(0);
                keyed.extend_from_slice(&self.seed.to_le_bytes());
                config.with_persist(
                    PersistSpec::new(
                        dir.join(format!(
                            "responses-{}-{:08x}.json",
                            file_slug(model_identity),
                            fnv64(&keyed) as u32
                        )),
                        &[],
                        model_identity,
                    )
                    .with_compaction(DEFAULT_COMPACT_AFTER_RUNS),
                )
            }
            None => config,
        }
    }

    /// The verify-pool configuration this protocol implies, including
    /// verdict-cache persistence when a cache directory is resolved.
    ///
    /// `verify_workers == 0` defers to [`VerifyConfig::default`], which honours the
    /// `ASSERTSOLVER_VERIFY_WORKERS` environment override; an explicit setting wins
    /// over both.  The verdict snapshot (`verdicts-<hash>.json`, the hash
    /// covering [`CheckConfig::fingerprint`]) is fingerprinted by the same bytes
    /// — verdicts are pure functions of `(case, response, CheckConfig)` and
    /// independent of which model proposed the response, so one file is shared
    /// across models (header model `"-"`), while evaluations with different
    /// bounded-check parameters keep separate coexisting files instead of
    /// rejecting and overwriting each other's.
    pub fn verify_config(&self) -> VerifyConfig {
        let base = VerifyConfig::default();
        let base = if self.verify_workers == 0 {
            base
        } else {
            base.with_workers(self.verify_workers)
        };
        match self.resolved_cache_dir() {
            Some(dir) => {
                let fingerprint = self.check.fingerprint();
                base.with_persist(
                    PersistSpec::new(
                        dir.join(format!("verdicts-{:08x}.json", fnv64(&fingerprint) as u32)),
                        &fingerprint,
                        "-",
                    )
                    .with_compaction(DEFAULT_COMPACT_AFTER_RUNS),
                )
            }
            None => base,
        }
    }

    /// The session-engine configuration this protocol implies:
    /// [`EvalConfig::drivers`] driver threads (0 = auto via the
    /// `ASSERTSOLVER_DRIVERS` environment override), no per-session deadline —
    /// an evaluation must judge every case.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::default().with_drivers(self.drivers)
    }
}

/// Reduces a model identity to a file-name-safe slug (truncated; uniqueness
/// comes from the hash suffix in the file name, not the slug).
fn file_slug(name: &str) -> String {
    let slug: String = name
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    if slug.is_empty() {
        "model".to_string()
    } else {
        slug
    }
}

/// Per-case evaluation outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Module the case came from.
    pub module_name: String,
    /// Number of samples drawn (`n`).
    pub n: usize,
    /// Number of correct samples (`c`).
    pub c: usize,
    /// Table-I profile of the underlying bug.
    pub profile: svmutate::BugProfile,
    /// Lines of buggy code (for the length-bin breakdown).
    pub code_lines: usize,
    /// Whether the case is human-crafted.
    pub human_crafted: bool,
}

/// Evaluation of one model over a benchmark.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Model display name.
    pub model: String,
    /// Per-case results.
    pub results: Vec<CaseResult>,
}

impl ModelEvaluation {
    /// Aggregate pass@1/pass@5 over all cases.
    pub fn passk(&self) -> PassK {
        PassK::from_counts(&self.counts(|_| true))
    }

    /// Aggregate pass@k restricted to machine- or human-crafted cases.
    pub fn passk_subset(&self, human: bool) -> PassK {
        PassK::from_counts(&self.counts(|r| r.human_crafted == human))
    }

    /// pass@k per Table-I bug-type label.
    pub fn by_bug_type(&self) -> BTreeMap<String, PassK> {
        let mut out = BTreeMap::new();
        for label in [
            "Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond",
        ] {
            let counts = self.counts(|r| r.profile.labels().contains(&label));
            if !counts.is_empty() {
                out.insert(label.to_string(), PassK::from_counts(&counts));
            }
        }
        out
    }

    /// pass@k per Table-II code-length bin.
    pub fn by_length_bin(&self) -> Vec<(String, PassK)> {
        svgen::LENGTH_BINS
            .iter()
            .enumerate()
            .filter_map(|(idx, name)| {
                let counts = self.counts(|r| svgen::length_bin_index(r.code_lines) == idx);
                if counts.is_empty() {
                    None
                } else {
                    Some((name.to_string(), PassK::from_counts(&counts)))
                }
            })
            .collect()
    }

    /// Histogram of `c` (number of correct answers per case) — the data behind Fig. 3.
    ///
    /// Returns `samples + 1` buckets (`c = 0 ..= samples`).
    pub fn histogram(&self, samples: usize) -> Vec<usize> {
        let mut buckets = vec![0usize; samples + 1];
        for result in &self.results {
            let c = result.c.min(samples);
            buckets[c] += 1;
        }
        buckets
    }

    /// Number of cases with at least one correct sample (`c > 0`) — the
    /// "solved" count ladder comparisons and the escalation example report.
    pub fn solved_cases(&self) -> usize {
        self.results.iter().filter(|r| r.c > 0).count()
    }

    fn counts(&self, filter: impl Fn(&CaseResult) -> bool) -> Vec<(usize, usize)> {
        self.results
            .iter()
            .filter(|r| filter(r))
            .map(|r| (r.n, r.c))
            .collect()
    }
}

/// Checks whether one response solves one case.
///
/// The fast path compares the proposed line and fix textually against the golden
/// solution; otherwise the proposed edit is applied to the buggy source and the
/// repaired design is re-checked with the bounded verifier.
pub fn response_is_correct(
    entry: &SvaBugEntry,
    response: &Response,
    oracle: &VerifyOracle,
) -> bool {
    let line_matches = response.bug_line_number == entry.bug_line_number;
    if line_matches && response.fixed_line.trim() == entry.fixed_line.trim() {
        return true;
    }
    if response.bug_line_number == 0 || response.fixed_line.trim().is_empty() {
        return false;
    }
    let Some(repaired_source) = apply_line_edit(
        &entry.buggy_source,
        response.bug_line_number,
        &response.fixed_line,
    ) else {
        return false;
    };
    let Ok(repaired) = svparse::parse_module(&repaired_source) else {
        return false;
    };
    // The repair must change something and must make the assertions hold.
    if svparse::emit_module(&repaired) == entry.buggy_source {
        return false;
    }
    oracle.repair_solves_failure(&repaired)
}

/// Replaces the 1-based line `line_number` of `source` with `replacement`, preserving
/// the original indentation.
pub fn apply_line_edit(source: &str, line_number: u32, replacement: &str) -> Option<String> {
    let mut lines: Vec<String> = source.lines().map(|l| l.to_string()).collect();
    let idx = (line_number as usize).checked_sub(1)?;
    let original = lines.get(idx)?;
    let indent: String = original.chars().take_while(|c| c.is_whitespace()).collect();
    lines[idx] = format!("{indent}{}", replacement.trim());
    Some(lines.join("\n") + "\n")
}

/// A persistent verification backend for model evaluation.
///
/// Wraps an `svserve::VerifyPool` whose judge is [`response_is_correct`] under a
/// [`VerifyOracle`] built from the evaluation's [`CheckConfig`].  Verdict-cache keys
/// are `hash(case fingerprint, response, CheckConfig fingerprint)`, so keeping one
/// verifier alive across several [`evaluate_model_with`] calls replays already-judged
/// candidates from the cache — re-evaluating a corpus the pool has seen is pure
/// cache hits, and the verdicts (being pure functions) are identical either way.
///
/// When the evaluation resolves a cache directory ([`EvalConfig::cache_dir`] or
/// `ASSERTSOLVER_CACHE_DIR`), the verdict cache additionally persists across
/// *processes*: it preloads from its `verdicts-<hash>.json` at start and flushes back on
/// shutdown/drop (or an explicit [`EvalVerifier::flush`]).
pub struct EvalVerifier {
    pool: VerifyPool<SvaBugEntry>,
    check_fingerprint: [u8; 28],
}

impl EvalVerifier {
    /// Starts the verify workers for the given protocol.
    pub fn start(config: &EvalConfig) -> Self {
        Self::start_traced(config, TracerHandle::off())
    }

    /// Starts the verify workers with a journal tracer installed on the pool,
    /// so admit and cache/panic diagnostics land in the session journal.  With
    /// [`TracerHandle::off`] this is exactly [`EvalVerifier::start`].
    pub fn start_traced(config: &EvalConfig, tracer: TracerHandle) -> Self {
        Self::start_instrumented(config, tracer, &TelemetryHandle::off())
    }

    /// Starts the verify workers with both observability hooks installed: the
    /// journal tracer and a telemetry registry (the pool records its
    /// `verify.queue_wait` / `verify.verdict.latency` histograms into it).
    /// With both hooks off this is exactly [`EvalVerifier::start`].
    pub fn start_instrumented(
        config: &EvalConfig,
        tracer: TracerHandle,
        telemetry: &TelemetryHandle,
    ) -> Self {
        let oracle = VerifyOracle::new(config.check.clone());
        let judge = move |entry: &SvaBugEntry, response: &Response| {
            response_is_correct(entry, response, &oracle)
        };
        Self {
            pool: VerifyPool::start(
                Arc::new(judge),
                config
                    .verify_config()
                    .with_tracer(tracer)
                    .with_telemetry(telemetry.clone()),
            ),
            check_fingerprint: config.check.fingerprint(),
        }
    }

    /// The verdict-cache key for judging `response` against `entry`.
    ///
    /// The case fingerprint covers exactly the entry fields the verdict depends on
    /// (buggy source, golden bug line and fix); the [`CheckConfig`] fingerprint
    /// covers every bounded-check parameter.  The response is normalized to the two
    /// fields [`response_is_correct`] reads — proposed line number and fix text —
    /// so identical fixes that differ only in echoed context or reasoning text
    /// share one cached verdict, exactly as the old serial dedup did.
    pub fn key_for(&self, entry: &SvaBugEntry, response: &Response) -> VerdictKey {
        let normalized = Response {
            bug_line_number: response.bug_line_number,
            buggy_line: String::new(),
            fixed_line: response.fixed_line.clone(),
            cot: None,
        };
        verdict_key(
            &[
                entry.buggy_source.as_bytes(),
                &entry.bug_line_number.to_le_bytes(),
                entry.fixed_line.as_bytes(),
            ],
            &normalized,
            &self.check_fingerprint,
        )
    }

    /// Submits one candidate for judgement.
    pub fn submit(&self, case: Arc<SvaBugEntry>, response: Response) -> VerifyTicket {
        let key = self.key_for(&case, &response);
        self.submit_keyed(case, response, key)
    }

    /// Submits one candidate whose [`VerdictKey`] the caller already computed.
    pub fn submit_keyed(
        &self,
        case: Arc<SvaBugEntry>,
        response: Response,
        key: VerdictKey,
    ) -> VerifyTicket {
        self.pool
            .submit(VerifyRequest::new(case, response, key))
            .expect("verify pool open during evaluation")
    }

    /// Non-blocking variant of [`EvalVerifier::submit_keyed`] for async
    /// sessions: parks on a waker (never a thread) while the verify shard is at
    /// capacity.
    pub async fn submit_keyed_async(
        &self,
        case: Arc<SvaBugEntry>,
        response: Response,
        key: VerdictKey,
    ) -> VerifyTicket {
        self.pool
            .submit_async(VerifyRequest::new(case, response, key))
            .expect("verify pool open during evaluation")
            .await
            .expect("verify pool open during evaluation")
    }

    /// Takes a metrics snapshot of the verification stage.
    pub fn metrics(&self) -> VerifyMetrics {
        self.pool.metrics()
    }

    /// Writes the verdict cache to its configured snapshot path, returning the
    /// number of entries written (`Ok(0)` when no cache directory is resolved).
    /// Shutdown and drop flush automatically; this is for long-lived verifiers
    /// that want durability between evaluations.
    pub fn flush(&self) -> std::io::Result<usize> {
        self.pool.flush()
    }

    /// Stops the verify workers, flushes the verdict snapshot and returns the
    /// final metrics.
    pub fn shutdown(self) -> VerifyMetrics {
        self.pool.shutdown()
    }
}

/// What a session journal was recorded over: enough identity to *rebuild* the
/// evaluation (`svreplay replay`) and enough fingerprints to refuse a replay
/// against the wrong inputs.
///
/// Rendered (as one JSON line) into the journal header's `manifest` field.
/// `model_tag` / `corpus_tag` are rebuild recipes the recorder chooses (e.g.
/// `base:3` and `tiny:31+human`); the fingerprints are pure content hashes the
/// replayer re-derives and compares.  Temperature is carried in milli-units so
/// the manifest never serializes a float.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalManifest {
    /// Model identity string ([`RepairModel::identity`]): folds a content hash
    /// of the weights, so two same-named checkpoints never replay each other.
    pub model: String,
    /// Recorder-chosen recipe for rebuilding the model (opaque to the core).
    pub model_tag: String,
    /// Recorder-chosen recipe for rebuilding the corpus (opaque to the core).
    pub corpus_tag: String,
    /// FNV-1a/64 over every corpus entry's verdict-relevant content, in hex.
    pub corpus_fnv: String,
    /// Samples per case (`n`).
    pub samples: u64,
    /// Sampling temperature in milli-units (`0.2` → `200`).
    pub temperature_milli: u64,
    /// Evaluation seed.
    pub seed: u64,
    /// FNV-1a/64 of the bounded-check fingerprint, in hex.
    pub check_fnv: String,
}

impl JournalManifest {
    /// Builds the manifest for one `(model, corpus, protocol)` triple.  The
    /// rebuild tags are the caller's (pass empty strings for record-only
    /// journals that will never be re-driven).
    pub fn for_protocol(
        model_tag: &str,
        corpus_tag: &str,
        model_identity: &str,
        entries: &[SvaBugEntry],
        config: &EvalConfig,
    ) -> Self {
        Self {
            model: model_identity.to_string(),
            model_tag: model_tag.to_string(),
            corpus_tag: corpus_tag.to_string(),
            corpus_fnv: format!("{:016x}", corpus_fingerprint(entries)),
            samples: config.samples as u64,
            temperature_milli: (config.temperature * 1000.0).round() as u64,
            seed: config.seed,
            check_fnv: format!("{:016x}", fnv64(&config.check.fingerprint())),
        }
    }

    /// Renders the manifest as one JSON line (the journal header's `manifest`).
    pub fn render(&self) -> String {
        serde_json::to_string(self).expect("manifest serializes")
    }

    /// Parses a rendered manifest back, for replay validation.
    pub fn parse(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|err| format!("malformed journal manifest: {err}"))
    }
}

/// FNV-1a/64 over every corpus entry's identity-relevant fields, in corpus
/// order — the fingerprint [`JournalManifest`] pins a journal to.
pub fn corpus_fingerprint(entries: &[SvaBugEntry]) -> u64 {
    let mut bytes = Vec::new();
    for entry in entries {
        bytes.extend_from_slice(entry.module_name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(entry.buggy_source.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&entry.bug_line_number.to_le_bytes());
        bytes.extend_from_slice(entry.fixed_line.as_bytes());
        bytes.push(0);
    }
    fnv64(&bytes)
}

/// Evaluates a model over a set of cases.
///
/// Sampling runs through the `svserve` repair service and verification through a
/// fresh [`EvalVerifier`]; see [`evaluate_model_with`] for the pipeline.  To share a
/// warm verdict cache across several evaluations, start an [`EvalVerifier`] once and
/// call [`evaluate_model_with`] directly.
///
/// When [`EvalConfig::journal_dir`] (or `ASSERTSOLVER_JOURNAL_DIR`) resolves,
/// the run additionally records a session journal and writes it to
/// `journal-<slug>-<hash>.jsonl` in that directory as a record-only artifact
/// (empty rebuild tags; use `svreplay record` for replayable journals).
pub fn evaluate_model<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
) -> ModelEvaluation {
    if let Some(spec) = config.resolved_shards() {
        return evaluate_model_sharded(model, entries, config, &spec);
    }
    let Some(dir) = config.resolved_journal_dir() else {
        let verifier = EvalVerifier::start(config);
        // `ASSERTSOLVER_TRACE` turns on span collection; the drained tree is
        // written as a `trace-*.jsonl` artifact when a profile directory
        // resolves (dropped otherwise — collection is cheap, and `svtrace`
        // renders in-memory).
        let trace = TraceHandle::from_env();
        let evaluation = evaluate_model_observed(
            model,
            entries,
            config,
            &verifier,
            &TracerHandle::off(),
            &TelemetryHandle::off(),
            &trace,
        );
        verifier.shutdown();
        write_trace_artifact(model, entries, config, &trace);
        return evaluation;
    };
    let manifest = JournalManifest::for_protocol("", "", &model.identity(), entries, config);
    let (evaluation, rendered) = evaluate_model_journaled(model, entries, config, &manifest);
    let mut keyed = model.identity().as_bytes().to_vec();
    keyed.push(0);
    keyed.extend_from_slice(&config.seed.to_le_bytes());
    keyed.extend_from_slice(&corpus_fingerprint(entries).to_le_bytes());
    let path = dir.join(format!(
        "journal-{}-{:08x}.jsonl",
        file_slug(&model.identity()),
        fnv64(&keyed) as u32
    ));
    // Best-effort like the cache flush paths: an unwritable journal directory
    // must not fail the evaluation itself.
    let _ = write_journal(&path, &rendered);
    evaluation
}

/// Evaluates a model while recording a session journal, returning the
/// evaluation plus the *rendered* journal (header, sorted records, the
/// serialized [`ModelEvaluation`] as payload, checksummed footer).
///
/// The rendered bytes are a pure function of `(model, corpus, protocol)`:
/// identical at any [`EvalConfig::workers`] / [`EvalConfig::verify_workers`] /
/// [`EvalConfig::drivers`] setting and with warm or cold caches.  That makes
/// the journal a repro artifact — `svreplay` re-drives it and asserts byte
/// equality of both the journal and the embedded evaluation payload.
pub fn evaluate_model_journaled<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    manifest: &JournalManifest,
) -> (ModelEvaluation, String) {
    let sink = JournalSink::shared(JournalSpec::default());
    let tracer = sink.handle();
    let verifier = EvalVerifier::start_traced(config, tracer.clone());
    let evaluation = evaluate_model_traced(model, entries, config, &verifier, &tracer);
    verifier.shutdown();
    let records = sink.drain_sorted();
    let header = JournalHeader::expected(&manifest.render());
    let payload = serde_json::to_string(&evaluation).expect("evaluation serializes");
    let rendered = render_journal(&header, &records, &payload);
    (evaluation, rendered)
}

/// Evaluates a model against a remote shard fleet (`shard-serve` processes
/// behind unix sockets) instead of an in-process repair service.
///
/// `model` is the *local* copy of the model the shards serve: its identity is
/// the fingerprint the `Hello` handshake enforces, so a fleet serving a
/// different model (whose answers would differ) refuses the connection
/// instead of silently corrupting the evaluation.  Sampling happens on the
/// shards — requests place by content hash, so per-shard caches stay disjoint
/// — while candidate verification runs locally through a fresh
/// [`EvalVerifier`].  The result is byte-identical to the in-process
/// [`evaluate_model`] run at any shard count, warm or cold caches.
///
/// Degradation, never failure: a case whose shard is down, busy, or corrupt
/// becomes a zero-sample [`CaseResult`] (`n = 0, c = 0`) and the failure is
/// counted in the fleet metrics — a killed shard process cannot panic or hang
/// the evaluation.
pub fn evaluate_model_sharded<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    spec: &ShardSpec,
) -> ModelEvaluation {
    let fleet = ShardFleet::connect_unix(
        &spec.sockets,
        Some(&model.identity()),
        std::time::Duration::from_millis(spec.timeout_ms.max(1)),
    );
    let verifier = EvalVerifier::start(config);
    let trace = TraceHandle::from_env();
    let evaluation =
        evaluate_model_over_fleet_traced(model, entries, config, &fleet, &verifier, &trace);
    verifier.shutdown();
    write_trace_artifact(model, entries, config, &trace);
    evaluation
}

/// Writes the drained trace tree as a `trace-<slug>-<hash>.jsonl` artifact
/// into the resolved profile directory, best-effort (like the cache flush
/// and journal writes — an unwritable directory must not fail the
/// evaluation).  No-op while tracing is off or nothing was collected.
fn write_trace_artifact<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    trace: &TraceHandle,
) {
    if !trace.is_on() {
        return;
    }
    let forest = svserve::TraceForest::from_spans(trace.drain());
    if forest.is_empty() {
        return;
    }
    let Some(dir) = config.resolved_profile_dir() else {
        return;
    };
    let mut keyed = model.identity().as_bytes().to_vec();
    keyed.push(0);
    keyed.extend_from_slice(&config.seed.to_le_bytes());
    keyed.extend_from_slice(&corpus_fingerprint(entries).to_le_bytes());
    let path = dir.join(format!(
        "trace-{}-{:08x}.jsonl",
        file_slug(&model.identity()),
        fnv64(&keyed) as u32
    ));
    let _ = svserve::persist::write_atomic(&path, &forest.render_jsonl());
}

/// [`evaluate_model_sharded`] with externally managed fleet and verifier, so
/// callers can run several evaluations over one set of connections (and read
/// the fleet's metrics afterwards).
pub fn evaluate_model_over_fleet<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    fleet: &ShardFleet,
    verifier: &EvalVerifier,
) -> ModelEvaluation {
    evaluate_model_over_fleet_traced(model, entries, config, fleet, verifier, &TraceHandle::off())
}

/// [`evaluate_model_over_fleet`] with a [`TraceHandle`] collecting the
/// cross-process trace tree.
///
/// The driver derives each case's root context (a pure function of request
/// content + salt), sends it over the wire inside `SubmitTraced`, and records
/// the same five-span tree the in-process run builds: `session` root with
/// `submit` / `sample` / `verify` / `evaluate` children.  The shard — which
/// adopted the remote parent — answers with its own `sample` span; because
/// its deterministic fields are derived from the identical context, it merges
/// byte-for-byte with the driver's (keeping the shard-measured wall via
/// max-merge).  The drained deterministic tree is therefore byte-identical to
/// the in-process and loopback trees for the same corpus — the acceptance bar
/// `tests/trace_determinism.rs` pins.  A degraded case (dead shard, busy,
/// wire failure) contributes no spans, exactly as it contributes no samples.
pub fn evaluate_model_over_fleet_traced<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    fleet: &ShardFleet,
    verifier: &EvalVerifier,
    trace: &TraceHandle,
) -> ModelEvaluation {
    let results = entries
        .iter()
        .map(|entry| {
            let request = RepairRequest::new(
                CaseInput::from_entry(entry),
                config.samples,
                config.temperature,
            );
            let tctx = if trace.is_on() {
                trace.root(request.key())
            } else {
                None
            };
            let session_start = Instant::now();
            let mut lap = session_start;
            let submit_span = tctx.as_ref().map(|ctx| {
                span_lap(
                    ctx,
                    "submit",
                    trace_stage::SUBMIT,
                    request.samples as u64,
                    &mut lap,
                )
            });
            let wire_result = match &tctx {
                Some(ctx) => fleet.submit_traced(&request, ctx).map(|(outcome, spans)| {
                    trace.extend(spans);
                    outcome
                }),
                None => fleet.submit(&request),
            };
            match wire_result {
                Ok(outcome) => {
                    if let (Some(ctx), Some(submit_span)) = (&tctx, submit_span) {
                        trace.record(submit_span);
                        // The driver's own copy of the sample span: identical
                        // deterministic fields to the shard's, wall measured
                        // driver-side (wire time included) so the tree tiles
                        // even against a v2 shard that returned no spans.
                        trace.record(span_lap(
                            ctx,
                            "sample",
                            trace_stage::SAMPLE,
                            outcome.responses.len() as u64,
                            &mut lap,
                        ));
                    }
                    let case = Arc::new(entry.clone());
                    let submitted = fan_out_candidates(verifier, &case, &outcome.responses);
                    if let Some(ctx) = &tctx {
                        trace.record(span_lap(
                            ctx,
                            "verify",
                            trace_stage::VERIFY,
                            submitted.len() as u64,
                            &mut lap,
                        ));
                    }
                    let mut c = 0;
                    for (count, ticket) in submitted {
                        if ticket.wait().verdict {
                            c += count;
                        }
                    }
                    if let Some(ctx) = &tctx {
                        trace.record(span_lap(
                            ctx,
                            "evaluate",
                            trace_stage::EVALUATE,
                            c as u64,
                            &mut lap,
                        ));
                        trace.record(TraceSpan::new(
                            ctx,
                            "session",
                            trace_stage::SESSION,
                            outcome.responses.len() as u64,
                            session_start.elapsed().as_nanos() as u64,
                        ));
                    }
                    build_case_result(entry, outcome.responses.len(), c)
                }
                // Busy, closed, or a wire failure: a counted degraded case.
                Err(_) => build_case_result(entry, 0, 0),
            }
        })
        .collect();
    ModelEvaluation {
        model: model.name().to_string(),
        results,
    }
}

/// Evaluates a model with an externally managed verification backend.
///
/// Every case runs as one **async session** on the `svserve` session engine
/// (submit → sampled → verify → done): the session submits its request to the
/// sharded repair pool without blocking, awaits the waker-backed ticket, fans
/// its distinct candidates out to the verify pool, and awaits the verdicts —
/// all multiplexed over [`EvalConfig::drivers`] driver threads, so a corpus of
/// thousands holds thousands of sessions in flight on a handful of threads.
/// Because sampler seeds derive from case content and verdicts are pure
/// functions of `(case, response, CheckConfig)`, the result is identical at any
/// [`EvalConfig::workers`] / [`EvalConfig::verify_workers`] /
/// [`EvalConfig::drivers`] setting and whether the verifier's verdict cache is
/// cold or pre-warmed.
pub fn evaluate_model_with<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    verifier: &EvalVerifier,
) -> ModelEvaluation {
    evaluate_model_traced(model, entries, config, verifier, &TracerHandle::off())
}

/// [`evaluate_model_with`] with a journal tracer threaded through every layer:
/// the repair service, the session engine's runtime, and a per-case
/// [`SessionSpan`] that records phase transitions, sample/candidate tallies,
/// the verdict split and exactly one terminal event.  Session ids are the
/// request content hashes, so journal identity survives any concurrency.  With
/// [`TracerHandle::off`] this is exactly [`evaluate_model_with`] — one branch
/// per instrumented site.  (The verifier's own tracer is installed at
/// [`EvalVerifier::start_traced`], since its pool outlives single evaluations.)
pub fn evaluate_model_traced<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    verifier: &EvalVerifier,
    tracer: &TracerHandle,
) -> ModelEvaluation {
    evaluate_model_hooked(
        model,
        entries,
        config,
        verifier,
        tracer,
        &TelemetryHandle::off(),
    )
}

/// Evaluates a model with a telemetry registry threaded through every serving
/// layer — the repair pool (`service.repair.*`), the session engine's runtime
/// (`rt.poll.duration`), the per-case dual-clock spans (`session.span.wall`)
/// — plus coarse pipeline stage timers: verification telemetry is installed
/// pool-side at [`EvalVerifier::start_instrumented`], since the pool outlives
/// single evaluations.  With [`TelemetryHandle::off`] this is exactly
/// [`evaluate_model_with`].  Starts (and shuts down) a fresh verifier; to
/// share a warm one, use [`evaluate_model_hooked`].
pub fn evaluate_model_instrumented<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    telemetry: &TelemetryHandle,
) -> ModelEvaluation {
    let verifier = EvalVerifier::start_instrumented(config, TracerHandle::off(), telemetry);
    let evaluation = evaluate_model_hooked(
        model,
        entries,
        config,
        &verifier,
        &TracerHandle::off(),
        telemetry,
    );
    verifier.shutdown();
    evaluation
}

/// Evaluates a model under a fresh telemetry registry and folds the pipeline
/// stage timers into a flamegraph-compatible [`CollapsedProfile`].
///
/// The three `evaluate;*` frames tile the evaluation wall-clock end to end —
/// `setup` (request/span construction and pool spin-up), `sessions` (the
/// async session engine driving every case through sample → verify), and
/// `report` (span finish and result assembly) — so the profile attributes
/// essentially all of the run to a named stage; `svprof` asserts ≥ 95%.  When
/// [`EvalConfig::profile_dir`] (or `ASSERTSOLVER_PROFILE_DIR`) resolves, the
/// rendered profile is also written to `profile-<slug>-<hash>.folded` there,
/// best-effort.
pub fn evaluate_model_profiled<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
) -> (ModelEvaluation, CollapsedProfile) {
    let telemetry = TelemetryHandle::new(Arc::new(MetricsRegistry::default()));
    let evaluation = evaluate_model_instrumented(model, entries, config, &telemetry);
    let snapshot = telemetry.snapshot();
    let mut profile = CollapsedProfile::new();
    for stage in ["setup", "sessions", "report"] {
        if let Some(metric) = snapshot.get(&format!("eval.stage.{stage}")) {
            profile.record(&format!("evaluate;{stage}"), metric.sum);
        }
    }
    if let Some(dir) = config.resolved_profile_dir() {
        let mut keyed = model.identity().as_bytes().to_vec();
        keyed.push(0);
        keyed.extend_from_slice(&config.seed.to_le_bytes());
        keyed.extend_from_slice(&corpus_fingerprint(entries).to_le_bytes());
        let path = dir.join(format!(
            "profile-{}-{:08x}.folded",
            file_slug(&model.identity()),
            fnv64(&keyed) as u32
        ));
        // Best-effort like the journal write: an unwritable profile directory
        // must not fail the evaluation itself.
        let _ = svserve::persist::write_atomic(&path, &profile.render());
    }
    (evaluation, profile)
}

/// Observes the time since `*clock` into `metric` (when on) and restarts the
/// clock — the tiling primitive behind the `eval.stage.*` timers: consecutive
/// laps cover the wall-clock contiguously, so the stage sums account for the
/// whole evaluation.
fn stage_lap(clock: &mut Instant, metric: Option<&Metric>) {
    let now = Instant::now();
    if let Some(metric) = metric {
        metric.observe_duration(now.duration_since(*clock));
    }
    *clock = now;
}

/// Builds one child [`TraceSpan`] under `root` covering the time since
/// `*lap`, then restarts the lap — the same tiling discipline as
/// [`stage_lap`], applied per session: consecutive child spans cover the
/// session wall contiguously, which is what lets `svtrace` attribute ≥ 95%
/// of each session to named stages.
fn span_lap(
    root: &svserve::TraceContext,
    label: &str,
    seq: u32,
    units: u64,
    lap: &mut Instant,
) -> TraceSpan {
    let now = Instant::now();
    let wall = now.duration_since(*lap).as_nanos() as u64;
    *lap = now;
    TraceSpan::new(&root.child(label), label, seq, units, wall)
}

/// [`evaluate_model_traced`] with *both* observability hooks: the journal
/// tracer and a telemetry registry.  The registry receives the pool and
/// runtime histograms plus the tiled `eval.stage.{setup,sessions,report}`
/// stage timers (`stage_lap`); per-case spans are opened in dual-clock form
/// ([`SessionSpan::with_telemetry`]), so wall time lands in `session.span.wall`
/// while the journal bytes stay deterministic.  Either hook off costs one
/// branch per site.
pub fn evaluate_model_hooked<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    verifier: &EvalVerifier,
    tracer: &TracerHandle,
    telemetry: &TelemetryHandle,
) -> ModelEvaluation {
    evaluate_model_observed(
        model,
        entries,
        config,
        verifier,
        tracer,
        telemetry,
        &TraceHandle::off(),
    )
}

/// [`evaluate_model_hooked`] with the full observability triple: journal
/// tracer, telemetry registry, *and* a [`TraceHandle`] collecting causal
/// spans ([`svserve::trace`]).
///
/// When tracing is on, every case grows a deterministic five-span tree —
/// a `session` root with `submit` → `sample` → `verify` → `evaluate`
/// children whose ids derive from the request's content hash and whose
/// lap-measured walls tile the session end to end (the ≥95% attribution
/// `svtrace` asserts).  Every deterministic span field is a pure function of
/// `(case content, salt, stage)`, so the drained tree is byte-identical at
/// any worker/driver count, warm or cold — and identical to the tree a
/// remote fleet run produces for the same corpus
/// ([`evaluate_model_over_fleet_traced`]).  With [`TraceHandle::off`] each
/// instrumented site costs one branch.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_model_observed<M: RepairModel + Sync + ?Sized>(
    model: &M,
    entries: &[SvaBugEntry],
    config: &EvalConfig,
    verifier: &EvalVerifier,
    tracer: &TracerHandle,
    telemetry: &TelemetryHandle,
    trace: &TraceHandle,
) -> ModelEvaluation {
    let stage_setup = telemetry.histogram("eval.stage.setup", MetricClass::Volatile);
    let stage_sessions = telemetry.histogram("eval.stage.sessions", MetricClass::Volatile);
    let stage_report = telemetry.histogram("eval.stage.report", MetricClass::Volatile);
    let mut clock = Instant::now();
    let engine = SessionEngine::new(
        config
            .session_config()
            .with_tracer(tracer.clone())
            .with_telemetry(telemetry.clone()),
    );
    let monitor = engine.monitor();
    let results = serve_scoped(
        model,
        config
            .service_config_for(&model.identity())
            .with_tracer(tracer.clone())
            .with_telemetry(telemetry.clone()),
        |service| {
            let requests: Vec<RepairRequest> = entries
                .iter()
                .map(|entry| {
                    RepairRequest::new(
                        CaseInput::from_entry(entry),
                        config.samples,
                        config.temperature,
                    )
                })
                .collect();
            // One owner span per case, keyed by the request's content hash;
            // the futures hold clone handles, and the owners emit the terminal
            // events from the engine outcomes after `run_all` returns.
            let spans: Vec<SessionSpan> = requests
                .iter()
                .map(|request| {
                    SessionSpan::with_telemetry(tracer, telemetry, request.key().fold64())
                })
                .collect();
            let sessions: Vec<_> = entries
                .iter()
                .zip(requests)
                .zip(&spans)
                .map(|((entry, request), span)| {
                    let monitor = monitor.clone();
                    let span = span.handle();
                    // Root trace context: a pure function of request content
                    // and the handle's salt, never of scheduling.  `None`
                    // (tracing off) keeps the future span-free for one branch.
                    let tctx = if trace.is_on() {
                        trace.root(request.key())
                    } else {
                        None
                    };
                    let samples_requested = request.samples as u64;
                    async move {
                        let session_start = Instant::now();
                        let mut lap = session_start;
                        let ticket = service
                            .submit_async(request)
                            .expect("service open during evaluation")
                            .await
                            .expect("service open during evaluation");
                        monitor.phase(SessionPhase::Submitted);
                        span.phase(SessionPhase::Submitted);
                        if let Some(ctx) = &tctx {
                            trace.record(span_lap(
                                ctx,
                                "submit",
                                trace_stage::SUBMIT,
                                samples_requested,
                                &mut lap,
                            ));
                        }
                        let outcome = ticket.await;
                        monitor.phase(SessionPhase::Sampled);
                        span.phase(SessionPhase::Sampled);
                        span.timing("samples", outcome.responses.len() as u64);
                        if let Some(ctx) = &tctx {
                            trace.record(span_lap(
                                ctx,
                                "sample",
                                trace_stage::SAMPLE,
                                outcome.responses.len() as u64,
                                &mut lap,
                            ));
                        }
                        let case = Arc::new(entry.clone());
                        let submitted =
                            fan_out_candidates_async(verifier, &case, &outcome.responses).await;
                        monitor.phase(SessionPhase::Verifying);
                        span.phase(SessionPhase::Verifying);
                        span.timing("distinct-candidates", submitted.len() as u64);
                        if let Some(ctx) = &tctx {
                            trace.record(span_lap(
                                ctx,
                                "verify",
                                trace_stage::VERIFY,
                                submitted.len() as u64,
                                &mut lap,
                            ));
                        }
                        let c = judge_submitted(submitted).await;
                        span.verdict(c as u64, outcome.responses.len().saturating_sub(c) as u64);
                        monitor.phase(SessionPhase::Done);
                        span.phase(SessionPhase::Done);
                        if let Some(ctx) = &tctx {
                            trace.record(span_lap(
                                ctx,
                                "evaluate",
                                trace_stage::EVALUATE,
                                c as u64,
                                &mut lap,
                            ));
                            // The root span last: its wall is the whole
                            // session, which the four child laps tile.
                            trace.record(TraceSpan::new(
                                ctx,
                                "session",
                                trace_stage::SESSION,
                                outcome.responses.len() as u64,
                                session_start.elapsed().as_nanos() as u64,
                            ));
                        }
                        (outcome.responses.len(), c)
                    }
                })
                .collect();
            stage_lap(&mut clock, stage_setup.as_deref());
            let outcomes = engine.run_all(sessions);
            stage_lap(&mut clock, stage_sessions.as_deref());
            for (span, outcome) in spans.iter().zip(&outcomes) {
                span.finish(outcome);
            }
            entries
                .iter()
                .zip(outcomes)
                .map(|(entry, outcome)| {
                    let (n, c) = outcome.completed().expect("evaluation session completed");
                    build_case_result(entry, n, c)
                })
                .collect::<Vec<_>>()
        },
    );
    let evaluation = ModelEvaluation {
        model: model.name().to_string(),
        results,
    };
    // Workload tallies are pure functions of `(model, corpus, protocol)` —
    // the registry's deterministic plane, byte-stable at any driver/worker
    // count and cache temperature (unlike the volatile stage timers above).
    if telemetry.is_on() {
        let det = MetricClass::Deterministic;
        if let Some(metric) = telemetry.counter("eval.cases", det) {
            metric.add(evaluation.results.len() as u64);
        }
        if let Some(metric) = telemetry.counter("eval.samples", det) {
            metric.add(evaluation.results.iter().map(|r| r.n as u64).sum());
        }
        if let Some(metric) = telemetry.counter("eval.correct", det) {
            metric.add(evaluation.results.iter().map(|r| r.c as u64).sum());
        }
    }
    stage_lap(&mut clock, stage_report.as_deref());
    evaluation
}

/// Dedups one case's candidates into `(multiplicity, key, response)` triples.
///
/// Identical responses within a case collapse to one verdict job with a
/// multiplicity, which keeps the per-case correct count `c` independent of
/// verify-pool scheduling.  Shared by the blocking and async fan-outs so the
/// two paths cannot diverge.
fn dedup_candidates(
    verifier: &EvalVerifier,
    case: &Arc<SvaBugEntry>,
    responses: &[Response],
) -> Vec<(usize, VerdictKey, Response)> {
    let mut multiplicity: BTreeMap<VerdictKey, usize> = BTreeMap::new();
    let mut distinct: Vec<(VerdictKey, Response)> = Vec::new();
    for response in responses {
        match multiplicity.entry(verifier.key_for(case, response)) {
            BTreeEntry::Occupied(mut occupied) => *occupied.get_mut() += 1,
            BTreeEntry::Vacant(vacant) => {
                distinct.push((*vacant.key(), response.clone()));
                vacant.insert(1);
            }
        }
    }
    distinct
        .into_iter()
        .map(|(key, response)| (multiplicity[&key], key, response))
        .collect()
}

/// Dedups one case's candidates and submits the distinct ones for judgement
/// (blocking submit — the escalation judge runs on coordinator threads); the
/// returned pairs are `(multiplicity, ticket)`.
fn fan_out_candidates(
    verifier: &EvalVerifier,
    case: &Arc<SvaBugEntry>,
    responses: &[Response],
) -> Vec<(usize, VerifyTicket)> {
    dedup_candidates(verifier, case, responses)
        .into_iter()
        .map(|(count, key, response)| {
            (
                count,
                verifier.submit_keyed(Arc::clone(case), response, key),
            )
        })
        .collect()
}

/// Async variant of [`fan_out_candidates`] for session futures: same dedup
/// (shared via [`dedup_candidates`]), but submissions park on wakers instead
/// of threads.
async fn fan_out_candidates_async(
    verifier: &EvalVerifier,
    case: &Arc<SvaBugEntry>,
    responses: &[Response],
) -> Vec<(usize, VerifyTicket)> {
    let candidates = dedup_candidates(verifier, case, responses);
    let mut submitted = Vec::with_capacity(candidates.len());
    for (count, key, response) in candidates {
        let ticket = verifier
            .submit_keyed_async(Arc::clone(case), response, key)
            .await;
        submitted.push((count, ticket));
    }
    submitted
}

/// Awaits one case's verdicts and folds them into the correct count `c`
/// (multiplicities included).
async fn judge_submitted(submitted: Vec<(usize, VerifyTicket)>) -> usize {
    let mut correct = 0;
    for (count, ticket) in submitted {
        if ticket.await.verdict {
            correct += count;
        }
    }
    correct
}

/// Folds one case's sample and correct counts into a [`CaseResult`].
fn build_case_result(entry: &SvaBugEntry, n: usize, c: usize) -> CaseResult {
    CaseResult {
        module_name: entry.module_name.clone(),
        n,
        c,
        profile: entry.profile,
        code_lines: entry.code_lines,
        human_crafted: entry.human_crafted,
    }
}

/// One case's escalation record: which rungs ran, what each one's judge said.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EscalationTrail {
    /// Module the case came from.
    pub module_name: String,
    /// One judged attempt per rung tried, in ladder (cheapest-first) order.
    pub attempts: Vec<RouteAttempt>,
}

/// The pure evaluation data of one ladder run: per-model and per-policy
/// [`ModelEvaluation`]s plus the per-case escalation trails.
///
/// Everything here is a deterministic function of `(models, corpus, config)` —
/// byte-identical at any worker count and with warm or cold caches — which is
/// what the route-determinism suite asserts on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderEvaluation {
    /// One evaluation per model, in registration order (served via
    /// [`RoutePolicy::Pinned`]).
    pub per_model: Vec<ModelEvaluation>,
    /// The deterministic [`RoutePolicy::AbSplit`] evaluation: each case is
    /// answered by its content-hash arm.
    pub ab_split: ModelEvaluation,
    /// The [`RoutePolicy::Escalate`] evaluation: each case is answered by the
    /// first (cheapest) rung whose candidates pass verification; `c` is that
    /// terminal rung's correct count.
    pub escalate: ModelEvaluation,
    /// Per-case escalation trails, aligned with the corpus order.
    pub trails: Vec<EscalationTrail>,
}

/// Everything [`evaluate_ladder`] produces: the pure evaluation data plus the
/// router/verify metrics snapshot (per-backend throughput and cache hit rates,
/// escalation depth histogram, verdict-triggered re-submits).
pub struct LadderReport {
    /// The deterministic evaluation data.
    pub evaluation: LadderEvaluation,
    /// The observability snapshot (not part of the determinism contract).
    pub metrics: RouteMetrics,
    /// Backend indices in escalation (cheapest-first) order.
    pub ladder: Vec<usize>,
}

/// The escalation judge `evaluate_ladder` plugs into the router: maps a routed
/// request back to its corpus entry, fans the distinct candidates out to the
/// shared [`EvalVerifier`] (the existing verify pool), and folds the verdicts
/// into a [`JudgeReport`].  Pure in `(request, responses)` because verdicts
/// are pure — so escalation stays deterministic at any concurrency.
///
/// Corpus entries with byte-identical case content necessarily share one map
/// slot (the router can only see request content), so on such twins the
/// *routing* decision is judged against one golden fix; the reported
/// per-case `c` stays truthful regardless, because `evaluate_ladder`
/// re-judges each terminal response set positionally against its own entry.
struct LadderJudge {
    verifier: Arc<EvalVerifier>,
    cases: HashMap<CaseKey, Arc<SvaBugEntry>>,
}

impl EscalationJudge for LadderJudge {
    fn judge(&self, request: &RepairRequest, responses: &[Response]) -> JudgeReport {
        let Some(case) = self.cases.get(&request.key()) else {
            // A request the evaluation never registered: nothing to judge
            // against, so every rung is rejected (and the ladder runs out).
            return JudgeReport {
                distinct: 0,
                correct: 0,
            };
        };
        let submitted = fan_out_candidates(&self.verifier, case, responses);
        let distinct = submitted.len();
        let correct = submitted
            .into_iter()
            .map(|(count, ticket)| if ticket.wait().verdict { count } else { 0 })
            .sum();
        JudgeReport { distinct, correct }
    }
}

/// Routes every case under one policy as an async session and judges the
/// answers into results; returns each case's result plus its routed attempt
/// trail (length 1 for the direct policies, the full ladder walk for
/// [`RoutePolicy::Escalate`]).
fn route_phase(
    engine: &SessionEngine,
    router: &ModelRouter,
    policy: RoutePolicy,
    requests: &[RepairRequest],
    cases: &[Arc<SvaBugEntry>],
    entries: &[SvaBugEntry],
    verifier: &EvalVerifier,
) -> Vec<(CaseResult, Vec<RouteAttempt>)> {
    let monitor = engine.monitor();
    let sessions: Vec<_> = requests
        .iter()
        .zip(cases)
        .map(|(request, case)| {
            let request = request.clone();
            let case = Arc::clone(case);
            let monitor = monitor.clone();
            async move {
                let ticket = router
                    .submit_async(request, policy)
                    .expect("router open during evaluation")
                    .await
                    .expect("router open during evaluation");
                monitor.phase(SessionPhase::Submitted);
                let outcome = ticket.await;
                monitor.phase(SessionPhase::Sampled);
                if outcome.escalations() > 0 {
                    monitor.phase(SessionPhase::Escalated);
                }
                let submitted = fan_out_candidates_async(verifier, &case, &outcome.responses).await;
                monitor.phase(SessionPhase::Verifying);
                let c = judge_submitted(submitted).await;
                monitor.phase(SessionPhase::Done);
                (outcome.responses.len(), c, outcome.attempts)
            }
        })
        .collect();
    let outcomes = engine.run_all(sessions);
    entries
        .iter()
        .zip(outcomes)
        .map(|(entry, outcome)| {
            let (n, c, attempts) = outcome.completed().expect("ladder session completed");
            (build_case_result(entry, n, c), attempts)
        })
        .collect()
}

/// Evaluates a ladder of models over a corpus in one pass: per-model (pinned),
/// A/B-split and escalation [`ModelEvaluation`]s, plus per-case attempt trails
/// and the full per-route metrics.
///
/// All models are served concurrently by one [`ModelRouter`] — each backend
/// keeps its own sharded pool and response cache (persisted under its own model
/// identity when [`EvalConfig::cache_dir`] resolves) — and all verification
/// flows through one shared [`EvalVerifier`], so the pinned pass warms exactly
/// the caches the A/B and escalation passes replay.  The escalation policy
/// walks backends cheapest-first ([`RepairModel::cost`]) and re-submits on
/// failed verdicts; its `ModelEvaluation` therefore dominates the cheapest
/// rung's own evaluation case-for-case, which is the serving-side payoff the
/// routing layer exists for.
///
/// Determinism: [`LadderReport::evaluation`] is byte-identical at any
/// [`EvalConfig::workers`] / [`EvalConfig::verify_workers`] /
/// [`EvalConfig::drivers`] setting and with warm or cold caches (in-memory or
/// on-disk), for every policy.
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn evaluate_ladder(
    models: &[Arc<dyn RepairModel + Send + Sync>],
    entries: &[SvaBugEntry],
    config: &EvalConfig,
) -> LadderReport {
    assert!(!models.is_empty(), "ladder needs at least one model");
    let verifier = Arc::new(EvalVerifier::start(config));
    let requests: Vec<RepairRequest> = entries
        .iter()
        .map(|entry| {
            RepairRequest::new(
                CaseInput::from_entry(entry),
                config.samples,
                config.temperature,
            )
        })
        .collect();
    let cases: Vec<Arc<SvaBugEntry>> = entries
        .iter()
        .map(|entry| Arc::new(entry.clone()))
        .collect();
    let judge = Arc::new(LadderJudge {
        verifier: Arc::clone(&verifier),
        cases: requests
            .iter()
            .zip(&cases)
            .map(|(request, case)| (request.key(), Arc::clone(case)))
            .collect(),
    });
    let backends: Vec<BackendSpec> = models
        .iter()
        .map(|model| {
            BackendSpec::new(
                Arc::clone(model),
                config.service_config_for(&model.identity()),
            )
        })
        .collect();
    let router = ModelRouter::start(backends, judge, RouterConfig::default());
    let ladder = router.ladder().to_vec();
    let engine = SessionEngine::new(config.session_config());

    // Phase 1 — pinned: one full evaluation per model.  This also warms every
    // backend's response cache and the shared verdict cache, so the later
    // passes replay instead of recomputing.
    let per_model: Vec<ModelEvaluation> = models
        .iter()
        .enumerate()
        .map(|(idx, model)| ModelEvaluation {
            model: model.name().to_string(),
            results: route_phase(
                &engine,
                &router,
                RoutePolicy::Pinned(idx),
                &requests,
                &cases,
                entries,
                &verifier,
            )
            .into_iter()
            .map(|(result, _)| result)
            .collect(),
        })
        .collect();

    // Phase 2 — A/B split: the content hash of each case picks its arm.
    let ab_split = ModelEvaluation {
        model: format!("A/B split ({} arms)", models.len()),
        results: route_phase(
            &engine,
            &router,
            RoutePolicy::AbSplit,
            &requests,
            &cases,
            entries,
            &verifier,
        )
        .into_iter()
        .map(|(result, _)| result)
        .collect(),
    };

    // Phase 3 — escalation: cheapest rung first, re-submitting on failed
    // verdicts.  The terminal rung's responses are re-judged *positionally*
    // against each entry's own golden fix (pure verdict-cache hits on a
    // duplicate-free corpus, where this equals the terminal attempt's correct
    // count).  This keeps `c` truthful even when two corpus entries share
    // identical case content but different golden fixes — the router's judge,
    // which can only see request content, necessarily judges such twins
    // against one of them.
    let mut escalate_results = Vec::with_capacity(entries.len());
    let mut trails = Vec::with_capacity(entries.len());
    for (entry, (result, attempts)) in entries.iter().zip(route_phase(
        &engine,
        &router,
        RoutePolicy::Escalate,
        &requests,
        &cases,
        entries,
        &verifier,
    )) {
        escalate_results.push(result);
        trails.push(EscalationTrail {
            module_name: entry.module_name.clone(),
            attempts,
        });
    }
    let escalate = ModelEvaluation {
        model: format!("Escalate ({} rungs)", models.len()),
        results: escalate_results,
    };

    let route_metrics = router.shutdown();
    // The router (and its judge) are gone, so the verifier Arc is ours again;
    // shutting it down flushes the verdict snapshot exactly once and returns
    // the final verify view, save counters included.
    let verify_metrics = match Arc::try_unwrap(verifier) {
        Ok(verifier) => verifier.shutdown(),
        Err(verifier) => {
            let _ = verifier.flush();
            verifier.metrics()
        }
    };
    let metrics = route_metrics.with_verify(verify_metrics);
    LadderReport {
        evaluation: LadderEvaluation {
            per_model,
            ab_split,
            escalate,
            trails,
        },
        metrics,
        ladder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::human_crafted_cases;
    use svmodel::Response;

    fn fig1_entry() -> SvaBugEntry {
        human_crafted_cases()
            .into_iter()
            .find(|c| c.module_name == "accu_human")
            .expect("fig1 case present")
    }

    #[test]
    fn golden_fix_is_accepted_textually_and_semantically() {
        let entry = fig1_entry();
        let oracle = VerifyOracle::default();
        let exact = Response {
            bug_line_number: entry.bug_line_number,
            buggy_line: entry.buggy_line.clone(),
            fixed_line: entry.fixed_line.clone(),
            cot: None,
        };
        assert!(response_is_correct(&entry, &exact, &oracle));
    }

    #[test]
    fn semantically_equivalent_fix_on_the_right_line_is_accepted() {
        let entry = fig1_entry();
        let oracle = VerifyOracle::default();
        // `else if (end_cnt && 1)` is textually different but semantically repairs it.
        let equivalent = Response {
            bug_line_number: entry.bug_line_number,
            buggy_line: entry.buggy_line.clone(),
            fixed_line: "else if (end_cnt && 1) valid_out <= 1;".to_string(),
            cot: None,
        };
        assert!(response_is_correct(&entry, &equivalent, &oracle));
    }

    #[test]
    fn wrong_fix_is_rejected() {
        let entry = fig1_entry();
        let oracle = VerifyOracle::default();
        let wrong = Response {
            bug_line_number: entry.bug_line_number,
            buggy_line: entry.buggy_line.clone(),
            fixed_line: "else if (!end_cnt) valid_out <= 0;".to_string(),
            cot: None,
        };
        assert!(!response_is_correct(&entry, &wrong, &oracle));
        let nonsense = Response {
            bug_line_number: 0,
            buggy_line: String::new(),
            fixed_line: String::new(),
            cot: None,
        };
        assert!(!response_is_correct(&entry, &nonsense, &oracle));
    }

    #[test]
    fn apply_line_edit_preserves_indentation() {
        let source = "module m();\n  assign y = a & b;\nendmodule\n";
        let edited = apply_line_edit(source, 2, "assign y = a | b;").unwrap();
        assert!(edited.contains("  assign y = a | b;"));
        assert!(apply_line_edit(source, 99, "x").is_none());
    }

    #[test]
    fn evaluation_is_identical_at_any_worker_count() {
        let entries = human_crafted_cases();
        let model = svmodel::AssertSolverModel::base(3);
        let one = evaluate_model(
            &model,
            &entries,
            &EvalConfig {
                workers: 1,
                verify_workers: 1,
                ..EvalConfig::quick(5)
            },
        );
        let four = evaluate_model(
            &model,
            &entries,
            &EvalConfig {
                workers: 4,
                verify_workers: 4,
                ..EvalConfig::quick(5)
            },
        );
        assert_eq!(one, four, "worker count changed evaluation results");
    }

    #[test]
    fn warm_verdict_cache_reuses_verdicts_without_changing_results() {
        let entries: Vec<SvaBugEntry> = human_crafted_cases().into_iter().take(4).collect();
        let model = svmodel::AssertSolverModel::base(3);
        let config = EvalConfig {
            workers: 2,
            verify_workers: 2,
            ..EvalConfig::quick(7)
        };
        let verifier = EvalVerifier::start(&config);
        let cold = evaluate_model_with(&model, &entries, &config, &verifier);
        let cold_metrics = verifier.metrics();
        let warm = evaluate_model_with(&model, &entries, &config, &verifier);
        let warm_metrics = verifier.shutdown();
        assert_eq!(cold, warm, "a pre-warmed verdict cache changed results");
        assert!(
            warm_metrics.cache_hits > cold_metrics.cache_hits,
            "second evaluation must replay verdicts from the cache"
        );
        // The warm pass re-judges nothing: every verdict job it added was a hit.
        assert_eq!(warm_metrics.cache_misses, cold_metrics.cache_misses);
    }

    #[test]
    fn warm_start_from_disk_is_byte_identical_to_cold_start() {
        let dir = std::env::temp_dir().join(format!(
            "assertsolver-warm-start-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let entries: Vec<SvaBugEntry> = human_crafted_cases().into_iter().take(3).collect();
        let model = svmodel::AssertSolverModel::base(3);
        let config = EvalConfig {
            workers: 2,
            verify_workers: 2,
            cache_dir: Some(dir.display().to_string()),
            ..EvalConfig::quick(13)
        };

        // Cold run: no snapshots exist yet; pools flush them on the way out.
        let cold = evaluate_model(&model, &entries, &config);
        let verdict_snapshot = config
            .verify_config()
            .persist
            .expect("verdict persistence configured")
            .path;
        assert!(
            verdict_snapshot.exists(),
            "verdict snapshot must be written"
        );
        let response_snapshot = config
            .service_config_for(&model.identity())
            .persist
            .expect("response persistence configured")
            .path;
        assert!(
            response_snapshot.exists(),
            "response snapshot must be written"
        );

        // Warm run with entirely fresh pools: everything preloads from disk.
        let verifier = EvalVerifier::start(&config);
        let warm = evaluate_model_with(&model, &entries, &config, &verifier);
        let metrics = verifier.metrics();
        verifier.shutdown();
        assert_eq!(cold, warm, "warm-start evaluation must be byte-identical");
        assert!(
            metrics.snapshot_loaded_entries > 0,
            "verdict snapshot must preload"
        );
        assert!(
            metrics.cache_hits > 0,
            "warm run must hit the verdict cache"
        );
        assert!(
            metrics.warm_hits > 0 && metrics.warm_hit_rate > 0.0,
            "verdict hits must be attributed to the snapshot"
        );
        assert_eq!(
            metrics.cache_misses, 0,
            "a fully warm verdict cache re-judges nothing"
        );

        // A different CheckConfig resolves its own coexisting snapshot file, so
        // it cold-starts without loading stale verdicts — and without touching
        // the original protocol's snapshot.
        let reconfigured = EvalConfig {
            check: CheckConfig {
                depth: config.check.depth + 1,
                ..config.check.clone()
            },
            ..config.clone()
        };
        assert_ne!(
            reconfigured.verify_config().persist.unwrap().path,
            verdict_snapshot,
            "a changed CheckConfig must key a different verdict file"
        );
        let stale_verifier = EvalVerifier::start(&reconfigured);
        let stale_metrics = stale_verifier.metrics();
        stale_verifier.shutdown();
        assert_eq!(stale_metrics.snapshot_loaded_entries, 0);
        assert!(
            verdict_snapshot.exists(),
            "the original protocol's snapshot must survive"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn differently_seeded_models_never_share_a_response_snapshot() {
        // base(3) and base(11) share a display name but have different noisy
        // policy weights; their identities (and so their snapshot files and
        // headers) must differ, or a warm start would replay the wrong model's
        // responses.
        let a = svmodel::AssertSolverModel::base(3);
        let b = svmodel::AssertSolverModel::base(11);
        assert_eq!(a.name(), b.name());
        assert_ne!(a.identity(), b.identity());
        assert_eq!(
            a.identity(),
            svmodel::AssertSolverModel::base(3).identity(),
            "identity must be stable for identical weights"
        );
        let config = EvalConfig {
            cache_dir: Some("/tmp/x".into()),
            ..EvalConfig::quick(1)
        };
        let spec_a = config.service_config_for(&a.identity()).persist.unwrap();
        let spec_b = config.service_config_for(&b.identity()).persist.unwrap();
        assert_ne!(spec_a.path, spec_b.path);
        assert_ne!(spec_a.model, spec_b.model);
    }

    #[test]
    fn cache_dir_resolution_prefers_the_explicit_field() {
        let explicit = EvalConfig {
            cache_dir: Some("/tmp/explicit".into()),
            ..EvalConfig::quick(1)
        };
        assert_eq!(
            explicit.resolved_cache_dir(),
            Some(std::path::PathBuf::from("/tmp/explicit"))
        );
        // Blank strings resolve like None (falling through to the environment).
        let blank = EvalConfig {
            cache_dir: Some("   ".into()),
            ..EvalConfig::quick(1)
        };
        assert_eq!(blank.resolved_cache_dir(), svserve::env_cache_dir());
        // Persist specs land in the implied pool configs.
        let spec = explicit.service_config_for("AssertSolver (base)").persist;
        let spec = spec.expect("response persistence configured");
        let path = spec.path.display().to_string();
        assert!(
            path.starts_with("/tmp/explicit/responses-assertsolver--base-"),
            "unexpected snapshot path {path}"
        );
        assert!(path.ends_with(".json"));
        assert_eq!(spec.model, "AssertSolver (base)");
        // Distinct identities never share a snapshot path, even when they slug
        // identically (the hash suffix disambiguates).
        assert_ne!(
            explicit
                .service_config_for("Base model")
                .persist
                .unwrap()
                .path,
            explicit
                .service_config_for("base_model")
                .persist
                .unwrap()
                .path,
        );
        let verdict_spec = explicit
            .verify_config()
            .persist
            .expect("verdict persistence");
        let verdict_path = verdict_spec.path.display().to_string();
        assert!(
            verdict_path.starts_with("/tmp/explicit/verdicts-") && verdict_path.ends_with(".json"),
            "unexpected verdict snapshot path {verdict_path}"
        );
        assert_eq!(
            verdict_spec.fingerprint,
            explicit.check.fingerprint().to_vec()
        );
        // Different bounded-check parameters key different, coexisting files;
        // different seeds key different response files.
        let deeper = EvalConfig {
            check: CheckConfig {
                depth: explicit.check.depth + 1,
                ..explicit.check.clone()
            },
            ..explicit.clone()
        };
        assert_ne!(
            deeper.verify_config().persist.unwrap().path,
            verdict_spec.path
        );
        let reseeded = EvalConfig {
            seed: explicit.seed + 1,
            ..explicit.clone()
        };
        assert_ne!(
            reseeded.service_config_for("m").persist.unwrap().path,
            explicit.service_config_for("m").persist.unwrap().path,
            "a changed seed must key a different response file"
        );
        // Without a field or environment, nothing persists.
        let none = EvalConfig::quick(1);
        if svserve::env_cache_dir().is_none() {
            assert_eq!(none.service_config_for("m").persist, None);
            assert_eq!(none.verify_config().persist, None);
        }
    }

    #[test]
    fn histogram_and_breakdowns_are_consistent() {
        let eval = ModelEvaluation {
            model: "test".into(),
            results: vec![
                CaseResult {
                    module_name: "a".into(),
                    n: 4,
                    c: 4,
                    profile: svmutate::BugProfile::new(
                        svmutate::BugKind::Op,
                        svmutate::Structural::Cond,
                        svmutate::Visibility::Direct,
                    ),
                    code_lines: 30,
                    human_crafted: false,
                },
                CaseResult {
                    module_name: "b".into(),
                    n: 4,
                    c: 0,
                    profile: svmutate::BugProfile::new(
                        svmutate::BugKind::Value,
                        svmutate::Structural::NonCond,
                        svmutate::Visibility::Indirect,
                    ),
                    code_lines: 120,
                    human_crafted: true,
                },
            ],
        };
        let pk = eval.passk();
        assert!((pk.pass1 - 0.5).abs() < 1e-12);
        assert_eq!(eval.histogram(4), vec![1, 0, 0, 0, 1]);
        assert_eq!(eval.passk_subset(true).problems, 1);
        assert_eq!(eval.by_bug_type()["Op"].problems, 1);
        assert_eq!(eval.by_length_bin().len(), 2);
    }
}
