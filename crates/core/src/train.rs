//! End-to-end training orchestration: data pipeline → PT → SFT → DPO → benchmark.

use crate::benchmark::SvaEval;
use serde::{Deserialize, Serialize};
use svdata::{run_pipeline, split_by_module, Datasets, PipelineConfig, TrainTestSplit};
use svmodel::AssertSolverModel;

/// Configuration of a full training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Data-augmentation pipeline configuration.
    pub pipeline: PipelineConfig,
    /// SFT epochs over the combined SVA-Bug + Verilog-Bug data.
    pub sft_epochs: usize,
    /// SFT learning rate (the paper uses 1e-4 for a transformer; the linear policy
    /// uses a correspondingly larger step).
    pub sft_learning_rate: f64,
    /// Number of samples per training case when hunting for challenging cases
    /// (the paper uses 20).
    pub challenge_samples: usize,
    /// Sampling temperature during challenge collection.
    pub challenge_temperature: f64,
    /// DPO β (0.1 in the paper).
    pub dpo_beta: f64,
    /// DPO learning rate (lower than SFT, as in the paper).
    pub dpo_learning_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            sft_epochs: 8,
            sft_learning_rate: 0.4,
            challenge_samples: 20,
            challenge_temperature: 0.6,
            dpo_beta: 0.1,
            dpo_learning_rate: 0.05,
            seed: 0x005E_ED50,
        }
    }
}

impl TrainConfig {
    /// A reduced configuration that trains in seconds (used by tests and examples).
    pub fn quick(seed: u64) -> Self {
        Self {
            pipeline: PipelineConfig {
                corpus: svgen::CorpusConfig {
                    golden_designs: 24,
                    ..svgen::CorpusConfig::default()
                },
                bugs_per_design: 4,
                ..PipelineConfig::tiny(seed)
            },
            sft_epochs: 6,
            challenge_samples: 8,
            seed,
            ..Self::default()
        }
    }
}

/// Everything a training run produces: the three model checkpoints, the datasets, the
/// split and the SVA-Eval benchmark.
#[derive(Debug, Clone)]
pub struct TrainedArtifacts {
    /// The untrained base model (Deepseek-Coder-6.7b stand-in).
    pub base: AssertSolverModel,
    /// The SFT checkpoint (PT + SFT).
    pub sft: AssertSolverModel,
    /// The final AssertSolver (PT + SFT + DPO).
    pub assert_solver: AssertSolverModel,
    /// The augmented datasets.
    pub datasets: Datasets,
    /// The train/eval split of SVA-Bug.
    pub split: TrainTestSplit,
    /// The SVA-Eval benchmark (machine + human).
    pub sva_eval: SvaEval,
    /// Number of DPO preference pairs harvested from challenging cases.
    pub preference_pairs: usize,
    /// Fraction of Stage-3 CoTs that passed validation.
    pub cot_valid_fraction: f64,
}

/// Runs the full reproduction flow: augmentation pipeline, train/test split, PT, SFT,
/// challenging-case collection and DPO.
pub fn train(config: &TrainConfig) -> TrainedArtifacts {
    let output = run_pipeline(&config.pipeline);
    let split = split_by_module(
        output.datasets.sva_bug.clone(),
        config.pipeline.train_fraction,
        config.seed,
    );
    let sva_eval = SvaEval::build(split.eval.clone());

    let base = AssertSolverModel::base(config.seed);

    let mut sft = AssertSolverModel::base(config.seed);
    sft.pretrain(&output.datasets.verilog_pt);
    sft.sft(
        &split.train,
        &output.datasets.verilog_bug,
        config.sft_epochs,
        config.sft_learning_rate,
        config.seed ^ 0x5F7,
    );

    let mut assert_solver = sft.clone();
    let pairs = assert_solver.collect_challenging(
        &split.train,
        config.challenge_samples,
        config.challenge_temperature,
        config.seed ^ 0xD90,
    );
    assert_solver.dpo(&pairs, config.dpo_beta, config.dpo_learning_rate);

    TrainedArtifacts {
        base,
        sft,
        assert_solver,
        datasets: output.datasets,
        split,
        sva_eval,
        preference_pairs: pairs.len(),
        cot_valid_fraction: output.cot_valid_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svmodel::TrainingStage;

    #[test]
    fn quick_training_produces_all_checkpoints() {
        let artifacts = train(&TrainConfig::quick(31));
        assert_eq!(artifacts.base.stage(), TrainingStage::Base);
        assert_eq!(artifacts.sft.stage(), TrainingStage::Sft);
        assert_eq!(artifacts.assert_solver.stage(), TrainingStage::Dpo);
        assert!(!artifacts.split.train.is_empty());
        assert!(!artifacts.split.eval.is_empty());
        assert!(!artifacts.sva_eval.human.is_empty());
        assert!(artifacts.preference_pairs > 0);
        assert!(artifacts.cot_valid_fraction > 0.0);
    }

    #[test]
    fn quick_config_is_deterministic() {
        let a = train(&TrainConfig::quick(7));
        let b = train(&TrainConfig::quick(7));
        assert_eq!(a.split.eval.len(), b.split.eval.len());
        assert_eq!(a.preference_pairs, b.preference_pairs);
    }
}
