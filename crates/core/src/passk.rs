//! The unbiased pass@k estimator used throughout the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Unbiased pass@k for one problem: `1 - C(n-c, k) / C(n, k)`.
///
/// `n` is the number of sampled solutions, `c` how many were correct, `k` the budget.
///
/// # Examples
///
/// ```
/// let p = assertsolver::pass_at_k(20, 10, 1);
/// assert!((p - 0.5).abs() < 1e-9);
/// assert_eq!(assertsolver::pass_at_k(20, 0, 5), 0.0);
/// assert_eq!(assertsolver::pass_at_k(20, 20, 5), 1.0);
/// ```
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    if c == 0 {
        return 0.0;
    }
    if n.saturating_sub(c) < k {
        return 1.0;
    }
    // 1 - prod_{i=0..k-1} (n - c - i) / (n - i)
    let mut failure = 1.0f64;
    for i in 0..k {
        failure *= (n - c - i) as f64 / (n - i) as f64;
    }
    1.0 - failure
}

/// pass@1 and pass@5 for a set of problems.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PassK {
    /// Expected pass@1 across problems.
    pub pass1: f64,
    /// Expected pass@5 across problems.
    pub pass5: f64,
    /// Number of problems aggregated.
    pub problems: usize,
}

impl PassK {
    /// Aggregates `(n, c)` pairs — one per problem — into mean pass@1/pass@5.
    pub fn from_counts(counts: &[(usize, usize)]) -> Self {
        if counts.is_empty() {
            return Self::default();
        }
        let pass1: f64 = counts.iter().map(|(n, c)| pass_at_k(*n, *c, 1)).sum();
        let pass5: f64 = counts.iter().map(|(n, c)| pass_at_k(*n, *c, 5)).sum();
        Self {
            pass1: pass1 / counts.len() as f64,
            pass5: pass5 / counts.len() as f64,
            problems: counts.len(),
        }
    }

    /// pass@1 as a percentage.
    pub fn pass1_percent(&self) -> f64 {
        self.pass1 * 100.0
    }

    /// pass@5 as a percentage.
    pub fn pass5_percent(&self) -> f64 {
        self.pass5 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_at_1_is_fraction_correct() {
        assert!((pass_at_k(20, 5, 1) - 0.25).abs() < 1e-12);
        assert!((pass_at_k(10, 10, 1) - 1.0).abs() < 1e-12);
        assert_eq!(pass_at_k(20, 0, 1), 0.0);
    }

    #[test]
    fn pass_at_5_upper_bounds_pass_at_1() {
        for c in 0..=20 {
            assert!(pass_at_k(20, c, 5) + 1e-12 >= pass_at_k(20, c, 1));
        }
    }

    #[test]
    fn certain_success_when_failures_fewer_than_k() {
        assert_eq!(pass_at_k(20, 18, 5), 1.0);
        assert_eq!(pass_at_k(5, 1, 5), 1.0);
    }

    #[test]
    fn aggregation_matches_manual_mean() {
        let counts = vec![(20, 20), (20, 0), (20, 10)];
        let agg = PassK::from_counts(&counts);
        assert!((agg.pass1 - (1.0 + 0.0 + 0.5) / 3.0).abs() < 1e-12);
        assert_eq!(agg.problems, 3);
        assert!(agg.pass5 >= agg.pass1);
        assert!((agg.pass1_percent() - agg.pass1 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregation_is_zero() {
        assert_eq!(PassK::from_counts(&[]), PassK::default());
    }
}
