//! # assertsolver — reproduction of the AssertSolver system (DAC 2025)
//!
//! This crate ties the workspace together into the paper's end-to-end flow:
//!
//! 1. [`train()`](fn@train) runs the data-augmentation pipeline (`svdata`), the PT → SFT → DPO
//!    training recipe (`svmodel`) and builds the SVA-Eval benchmark
//!    ([`benchmark::SvaEval`], machine + human cases);
//! 2. [`evaluate_model`] samples any [`svmodel::RepairModel`] *n* times per case,
//!    decides correctness with the bounded checker (`svverify`) and aggregates
//!    pass@1/pass@5 ([`PassK`]) plus the per-bug-type, per-length-bin and histogram
//!    breakdowns behind Tables III/IV and Figures 3–5;
//! 3. [`report`] renders those results in the paper's table formats.
//!
//! ## Quick example
//!
//! ```no_run
//! use assertsolver::{evaluate_model, train, EvalConfig, TrainConfig};
//!
//! let artifacts = train(&TrainConfig::quick(1));
//! let eval = evaluate_model(
//!     &artifacts.assert_solver,
//!     &artifacts.sva_eval.all(),
//!     &EvalConfig::quick(1),
//! );
//! println!("pass@1 = {:.2}%", eval.passk().pass1_percent());
//! ```

pub mod benchmark;
pub mod evaluate;
pub mod passk;
pub mod report;
pub mod train;

pub use benchmark::{human_crafted_cases, SvaEval};
pub use evaluate::{
    apply_line_edit, corpus_fingerprint, evaluate_ladder, evaluate_model, evaluate_model_hooked,
    evaluate_model_instrumented, evaluate_model_journaled, evaluate_model_observed,
    evaluate_model_over_fleet, evaluate_model_over_fleet_traced, evaluate_model_profiled,
    evaluate_model_sharded, evaluate_model_traced, evaluate_model_with, response_is_correct,
    CaseResult, EscalationTrail, EvalConfig, EvalVerifier, JournalManifest, LadderEvaluation,
    LadderReport, ModelEvaluation, ShardSpec,
};
pub use passk::{pass_at_k, PassK};
pub use report::{
    render_breakdown, render_distribution, render_histogram, render_passk_table, render_split_table,
};
pub use train::{train, TrainConfig, TrainedArtifacts};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::SvaEval>();
        assert_send_sync::<super::ModelEvaluation>();
        assert_send_sync::<super::TrainedArtifacts>();
        assert_send_sync::<super::PassK>();
    }
}
