//! Property test: the mutation operators are *closed* over the quick corpus.
//!
//! For every `BugKind` applied to every quick-corpus golden module, the mutant must:
//!
//! 1. re-emit to canonical text that parses and compile-checks (the Stage-2
//!    "eliminate syntax errors" invariant);
//! 2. classify to the operator's declared taxonomy class: the injected bug reports
//!    exactly the requested [`BugKind`], and its `Cond`/`Non_cond` label agrees with
//!    the mutated site's context;
//! 3. be re-locatable by `sites`: the golden and buggy modules enumerate the same
//!    number of sites, exactly one site's expression differs, and replacing that
//!    site in the golden module with the buggy expression reproduces the mutant
//!    byte-for-byte.
//!
//! This is the in-tree twin of the `svfuzz` mutate-closure oracle; a divergence the
//! fuzzer mines should reproduce here by adding its seed.

use svgen::{CorpusConfig, CorpusGenerator};
use svmutate::{collect_sites, replace_site, BugInjector, Structural};
use svmutate::{BugKind, Site};
use svparse::{emit_module, parse_module, Module};

/// The quick corpus: enough designs to cover every family at two parameter points.
fn quick_corpus() -> Vec<Module> {
    let generator = CorpusGenerator::new(CorpusConfig {
        golden_designs: 32,
        ..CorpusConfig::default()
    });
    generator
        .golden_designs()
        .iter()
        .map(|d| parse_module(&d.source).expect("golden designs parse"))
        .collect()
}

/// Locates the single differing site between a golden module and its mutant.
fn locate(golden: &Module, buggy: &Module) -> Option<(Site, Site)> {
    let golden_sites = collect_sites(golden);
    let buggy_sites = collect_sites(buggy);
    if golden_sites.len() != buggy_sites.len() {
        return None;
    }
    let mut differing: Vec<(Site, Site)> = golden_sites
        .into_iter()
        .zip(buggy_sites)
        .filter(|(g, b)| svparse::pretty::emit_expr(&g.expr) != svparse::pretty::emit_expr(&b.expr))
        .collect();
    if differing.len() == 1 {
        differing.pop()
    } else {
        None
    }
}

#[test]
fn every_operator_is_closed_over_the_quick_corpus() {
    let corpus = quick_corpus();
    let mut injected = 0usize;
    for (design_index, golden) in corpus.iter().enumerate() {
        let mut injector = BugInjector::new(0xC105 ^ (design_index as u64));
        for kind in BugKind::all() {
            // Not every module offers a site for every kind (e.g. no literal in any
            // site expression means no Value bug); that is a legal `None`, not a
            // closure violation.
            let Some(bug) = injector.inject_with_kind(golden, kind) else {
                continue;
            };
            injected += 1;
            let buggy_text = emit_module(&bug.buggy);

            // (1) The mutant reparses and compile-checks.
            let reparsed = parse_module(&buggy_text).unwrap_or_else(|e| {
                panic!(
                    "{}/{kind}: mutant does not reparse: {e}\n{buggy_text}",
                    golden.name
                )
            });
            assert!(
                svparse::compile_check(&buggy_text).is_ok(),
                "{}/{kind}: mutant does not compile-check\n{buggy_text}",
                golden.name
            );
            assert_eq!(
                emit_module(&reparsed),
                buggy_text,
                "{}/{kind}: mutant emission is not canonical",
                golden.name
            );

            // (2) The bug classifies to the requested taxonomy class.
            assert_eq!(
                bug.kind, kind,
                "{}: injector reported kind {:?} for a requested {kind}",
                golden.name, bug.kind
            );

            // (3) The bug is re-locatable by `sites`.
            let (golden_site, buggy_site) = locate(golden, &bug.buggy).unwrap_or_else(|| {
                panic!(
                    "{}/{kind}: mutant is not re-locatable as a single differing site\n{buggy_text}",
                    golden.name
                )
            });
            assert_eq!(
                golden_site.index, buggy_site.index,
                "{}: site indices must align",
                golden.name
            );
            let declared = if golden_site.context.is_conditional() {
                Structural::Cond
            } else {
                Structural::NonCond
            };
            assert_eq!(
                bug.structural, declared,
                "{}/{kind}: structural label disagrees with the located site context {:?}",
                golden.name, golden_site.context
            );
            let rebuilt = replace_site(golden, golden_site.index, buggy_site.expr.clone());
            assert_eq!(
                emit_module(&rebuilt),
                buggy_text,
                "{}/{kind}: replaying the located site does not reproduce the mutant",
                golden.name
            );
        }
    }
    // The sweep must actually exercise the closure: most designs accept most kinds.
    assert!(
        injected >= corpus.len(),
        "too few injections to call this a property sweep: {injected}"
    );
}

/// Affected-signal lists recorded by the injector always name signals the located
/// site really influences — the classifier's input contract.
#[test]
fn affected_signals_match_located_site() {
    let corpus = quick_corpus();
    for (design_index, golden) in corpus.iter().enumerate() {
        let mut injector = BugInjector::new(0xAFFE ^ (design_index as u64));
        for _ in 0..4 {
            let Some(bug) = injector.inject(golden) else {
                continue;
            };
            let Some((golden_site, _)) = locate(golden, &bug.buggy) else {
                continue;
            };
            assert_eq!(
                bug.affected_signals, golden_site.affected,
                "{}: injector affected-signal list disagrees with the located site",
                golden.name
            );
        }
    }
}
