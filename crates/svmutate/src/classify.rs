//! Direct / Indirect classification and bug-line diffing.
//!
//! The Table-I `Direct`/`Indirect` distinction "depends on whether the assertion
//! failure is caused by the directly protected signal": a bug is *Direct* when a
//! signal written by the buggy statement appears in the failing assertion's property,
//! and *Indirect* when it only reaches the assertion through the fan-in cone.

use crate::taxonomy::Visibility;
use serde::{Deserialize, Serialize};
use svparse::{DependencyGraph, Module};

/// Classifies a bug's visibility with respect to a set of failing assertions.
///
/// `affected_signals` are the signals influenced by the mutated statement (recorded by
/// the injector); `failing_assertions` are the assertion display names extracted from
/// the simulation log.
pub fn classify_visibility(
    module: &Module,
    affected_signals: &[String],
    failing_assertions: &[String],
) -> Visibility {
    let mut assertion_signals = Vec::new();
    for name in failing_assertions {
        assertion_signals.extend(signals_of_assertion(module, name));
    }
    if assertion_signals.is_empty() {
        // No failing assertion information: fall back to "any assertion".
        for assertion in module.assertions() {
            assertion_signals.extend(signals_of_assertion(module, &assertion.display_name()));
        }
    }
    let direct = affected_signals
        .iter()
        .any(|sig| assertion_signals.iter().any(|a| a == sig));
    if direct {
        Visibility::Direct
    } else {
        Visibility::Indirect
    }
}

/// The signals referenced by the named assertion's property (including its
/// `disable iff` guard and clock are excluded — only the body matters for
/// classification).
pub fn signals_of_assertion(module: &Module, assertion_name: &str) -> Vec<String> {
    for assertion in module.assertions() {
        if assertion.display_name() == assertion_name {
            return match &assertion.target {
                svparse::AssertTarget::Named(prop_name) => module
                    .property(prop_name)
                    .map(|p| p.body.idents())
                    .unwrap_or_default(),
                svparse::AssertTarget::Inline(p) => p.body.idents(),
            };
        }
    }
    // Allow callers to pass the property name directly.
    module
        .property(assertion_name)
        .map(|p| p.body.idents())
        .unwrap_or_default()
}

/// How many driver hops separate the bug from the nearest failing assertion signal.
///
/// Distance 0 means a bugged signal is referenced directly (a `Direct` bug); larger
/// distances quantify how deep in the cone the bug hides, which the evaluation uses to
/// characterise difficulty.
pub fn assertion_distance(
    module: &Module,
    affected_signals: &[String],
    failing_assertions: &[String],
) -> Option<u32> {
    let graph = DependencyGraph::build(module);
    let mut best: Option<u32> = None;
    for assertion in failing_assertions {
        for observed in signals_of_assertion(module, assertion) {
            for bugged in affected_signals {
                let d = if &observed == bugged {
                    Some(0)
                } else {
                    graph.distance(&observed, bugged)
                };
                if let Some(d) = d {
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
            }
        }
    }
    best
}

/// One differing line between the golden and buggy canonical texts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineDiff {
    /// 1-based line number in the canonical rendering.
    pub line: u32,
    /// The golden (correct) line, trimmed.
    pub golden_line: String,
    /// The buggy line, trimmed.
    pub buggy_line: String,
}

/// Computes the per-line differences between two canonical renderings.
///
/// Canonical texts of a module and its single-site mutant always have the same number
/// of lines, so a positional comparison is exact.
pub fn diff_lines(golden_text: &str, buggy_text: &str) -> Vec<LineDiff> {
    golden_text
        .lines()
        .zip(buggy_text.lines())
        .enumerate()
        .filter(|(_, (g, b))| g != b)
        .map(|(i, (g, b))| LineDiff {
            line: (i + 1) as u32,
            golden_line: g.trim().to_string(),
            buggy_line: b.trim().to_string(),
        })
        .collect()
}

/// Returns the single differing line when exactly one line differs.
pub fn single_line_diff(golden_text: &str, buggy_text: &str) -> Option<LineDiff> {
    let diffs = diff_lines(golden_text, buggy_text);
    if diffs.len() == 1 {
        diffs.into_iter().next()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::BugInjector;
    use crate::taxonomy::Visibility;
    use svparse::{emit_module, parse_module};

    const SRC: &str = r#"
module accu(
  input clk,
  input rst_n,
  input valid_in,
  output reg valid_out
);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high");
endmodule
"#;

    #[test]
    fn assertion_signals_resolved_by_label_and_property_name() {
        let module = parse_module(SRC).unwrap();
        let by_label = signals_of_assertion(&module, "valid_out_check_assertion");
        let by_prop = signals_of_assertion(&module, "valid_out_check");
        assert_eq!(
            by_label,
            vec!["end_cnt".to_string(), "valid_out".to_string()]
        );
        assert_eq!(by_label, by_prop);
        assert!(signals_of_assertion(&module, "nonexistent").is_empty());
    }

    #[test]
    fn direct_vs_indirect_classification() {
        let module = parse_module(SRC).unwrap();
        let failing = vec!["valid_out_check_assertion".to_string()];
        // A bug writing valid_out is Direct.
        assert_eq!(
            classify_visibility(&module, &["valid_out".to_string()], &failing),
            Visibility::Direct
        );
        // A bug writing cnt only reaches the assertion through end_cnt: Indirect.
        assert_eq!(
            classify_visibility(&module, &["cnt".to_string()], &failing),
            Visibility::Indirect
        );
    }

    #[test]
    fn distance_quantifies_depth() {
        let module = parse_module(SRC).unwrap();
        let failing = vec!["valid_out_check_assertion".to_string()];
        assert_eq!(
            assertion_distance(&module, &["valid_out".to_string()], &failing),
            Some(0)
        );
        assert_eq!(
            assertion_distance(&module, &["cnt".to_string()], &failing),
            Some(1)
        );
        assert_eq!(
            assertion_distance(&module, &["ghost".to_string()], &failing),
            None
        );
    }

    #[test]
    fn diff_of_injected_bug_is_single_line() {
        let golden = parse_module(SRC).unwrap();
        let golden_text = emit_module(&golden);
        let mut injector = BugInjector::new(5);
        for _ in 0..10 {
            let bug = injector.inject(&golden).unwrap();
            let buggy_text = emit_module(&bug.buggy);
            let diff = single_line_diff(&golden_text, &buggy_text)
                .expect("single-site mutation must differ in exactly one line");
            assert_ne!(diff.golden_line, diff.buggy_line);
            assert!(diff.line >= 1);
        }
    }

    #[test]
    fn diff_lines_empty_for_identical_texts() {
        let module = parse_module(SRC).unwrap();
        let text = emit_module(&module);
        assert!(diff_lines(&text, &text).is_empty());
        assert!(single_line_diff(&text, &text).is_none());
    }
}
