//! # svmutate — bug injection across the AssertSolver Table-I taxonomy
//!
//! The paper uses Claude-3.5 to generate "random bugs" which are then validated with
//! EDA tools.  This crate is the rule-based stand-in: it enumerates mutation sites in
//! a golden module, applies Var/Value/Op edits (including the classic negated-
//! condition bug), labels every mutant along the three Table-I axes, and provides the
//! golden-solution diff used to build dataset entries.
//!
//! ## Quick example
//!
//! ```
//! use svmutate::{BugInjector, BugKind};
//!
//! let golden = svparse::parse_module(r#"
//! module m(input clk, input en, input [3:0] d, output reg [3:0] q);
//!   always @(posedge clk) begin
//!     if (en) q <= d;
//!   end
//! endmodule
//! "#).map_err(|e| e.to_string())?;
//! let bug = BugInjector::new(1).inject_with_kind(&golden, BugKind::Op).ok_or("no site")?;
//! assert_ne!(svparse::emit_module(&bug.buggy), svparse::emit_module(&golden));
//! # Ok::<(), String>(())
//! ```

pub mod classify;
pub mod inject;
pub mod operators;
pub mod sites;
pub mod taxonomy;

pub use classify::{
    assertion_distance, classify_visibility, diff_lines, signals_of_assertion, single_line_diff,
    LineDiff,
};
pub use inject::{BugInjector, InjectedBug};
pub use sites::{collect_sites, replace_site, Site, SiteContext};
pub use taxonomy::{table1_rows, BugKind, BugProfile, Structural, TaxonomyRow, Visibility};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::BugInjector>();
        assert_send_sync::<super::InjectedBug>();
        assert_send_sync::<super::BugProfile>();
        assert_send_sync::<super::LineDiff>();
    }
}
