//! Mutation-site discovery and targeted replacement.
//!
//! A *site* is one top-level expression inside the design logic (right-hand side of an
//! assignment, condition of an `if`, `case` subject or label).  Sites are enumerated
//! in a deterministic pre-order so that [`collect_sites`] and [`replace_site`] agree
//! on indices.

use serde::{Deserialize, Serialize};
use svparse::{CaseArm, Expr, Item, Module, Stmt};

/// Where a mutation site sits, which determines its `Cond`/`Non_cond` label and which
/// bug kinds apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteContext {
    /// Right-hand side of a continuous `assign`.
    AssignRhs,
    /// Right-hand side of a procedural (blocking or non-blocking) assignment.
    ProcRhs,
    /// Condition of an `if` statement.
    IfCond,
    /// Subject of a `case` statement.
    CaseSubject,
    /// Label of a `case` arm.
    CaseLabel,
}

impl SiteContext {
    /// Returns `true` for sites that live inside a conditional construct.
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            SiteContext::IfCond | SiteContext::CaseSubject | SiteContext::CaseLabel
        )
    }
}

/// One discovered mutation site.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Stable index used by [`replace_site`].
    pub index: usize,
    /// Kind of location.
    pub context: SiteContext,
    /// The expression currently at the site.
    pub expr: Expr,
    /// Signals whose values the site influences (assignment targets, or the signals
    /// assigned under a condition).
    pub affected: Vec<String>,
}

/// Enumerates every mutation site of the module's design logic (properties and
/// assertions are never mutated — the paper injects bugs into the RTL, not the SVAs).
pub fn collect_sites(module: &Module) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut index = 0usize;
    for item in &module.items {
        match item {
            Item::Assign(assign) => {
                sites.push(Site {
                    index,
                    context: SiteContext::AssignRhs,
                    expr: assign.rhs.clone(),
                    affected: assign.lhs.base_names(),
                });
                index += 1;
            }
            Item::Always(block) => collect_stmt_sites(&block.body, &mut sites, &mut index),
            _ => {}
        }
    }
    sites
}

fn collect_stmt_sites(stmt: &Stmt, sites: &mut Vec<Site>, index: &mut usize) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                collect_stmt_sites(s, sites, index);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let mut affected = then_branch.assigned_signals();
            if let Some(e) = else_branch {
                affected.extend(e.assigned_signals());
            }
            affected.sort();
            affected.dedup();
            sites.push(Site {
                index: *index,
                context: SiteContext::IfCond,
                expr: cond.clone(),
                affected,
            });
            *index += 1;
            collect_stmt_sites(then_branch, sites, index);
            if let Some(e) = else_branch {
                collect_stmt_sites(e, sites, index);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            let mut affected: Vec<String> = arms
                .iter()
                .flat_map(|a| a.body.assigned_signals())
                .collect();
            if let Some(d) = default {
                affected.extend(d.assigned_signals());
            }
            affected.sort();
            affected.dedup();
            sites.push(Site {
                index: *index,
                context: SiteContext::CaseSubject,
                expr: subject.clone(),
                affected: affected.clone(),
            });
            *index += 1;
            for arm in arms {
                for label in &arm.labels {
                    sites.push(Site {
                        index: *index,
                        context: SiteContext::CaseLabel,
                        expr: label.clone(),
                        affected: arm.body.assigned_signals(),
                    });
                    *index += 1;
                }
                collect_stmt_sites(&arm.body, sites, index);
            }
            if let Some(d) = default {
                collect_stmt_sites(d, sites, index);
            }
        }
        Stmt::Blocking { lhs, rhs, .. } | Stmt::NonBlocking { lhs, rhs, .. } => {
            sites.push(Site {
                index: *index,
                context: SiteContext::ProcRhs,
                expr: rhs.clone(),
                affected: lhs.base_names(),
            });
            *index += 1;
        }
        Stmt::Null => {}
    }
}

/// Returns a copy of the module with the expression at site `target` replaced.
///
/// The traversal order is identical to [`collect_sites`]; replacing an index that does
/// not exist returns an unchanged clone.
pub fn replace_site(module: &Module, target: usize, replacement: Expr) -> Module {
    let mut out = module.clone();
    let mut index = 0usize;
    for item in &mut out.items {
        match item {
            Item::Assign(assign) => {
                if index == target {
                    assign.rhs = replacement.clone();
                }
                index += 1;
            }
            Item::Always(block) => {
                replace_stmt_site(&mut block.body, target, &replacement, &mut index);
            }
            _ => {}
        }
    }
    out
}

fn replace_stmt_site(stmt: &mut Stmt, target: usize, replacement: &Expr, index: &mut usize) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                replace_stmt_site(s, target, replacement, index);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            if *index == target {
                *cond = replacement.clone();
            }
            *index += 1;
            replace_stmt_site(then_branch, target, replacement, index);
            if let Some(e) = else_branch {
                replace_stmt_site(e, target, replacement, index);
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            if *index == target {
                *subject = replacement.clone();
            }
            *index += 1;
            for arm in arms.iter_mut() {
                replace_case_arm(arm, target, replacement, index);
            }
            if let Some(d) = default {
                replace_stmt_site(d, target, replacement, index);
            }
        }
        Stmt::Blocking { rhs, .. } | Stmt::NonBlocking { rhs, .. } => {
            if *index == target {
                *rhs = replacement.clone();
            }
            *index += 1;
        }
        Stmt::Null => {}
    }
}

fn replace_case_arm(arm: &mut CaseArm, target: usize, replacement: &Expr, index: &mut usize) {
    for label in arm.labels.iter_mut() {
        if *index == target {
            *label = replacement.clone();
        }
        *index += 1;
    }
    replace_stmt_site(&mut arm.body, target, replacement, index);
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::{emit_module, parse_module};

    const SRC: &str = r#"
module dut(input clk, input rst_n, input [1:0] sel, input a, input b, output reg y, output z);
  wire gated;
  assign gated = a & b;
  assign z = gated;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) y <= 0;
    else begin
      case (sel)
        2'd0: y <= a;
        2'd1: y <= b;
        default: y <= gated;
      endcase
    end
  end
endmodule
"#;

    #[test]
    fn collects_all_expected_sites() {
        let module = parse_module(SRC).unwrap();
        let sites = collect_sites(&module);
        // 2 assigns + if cond + 3 proc rhs in arms + default rhs + case subject
        // + 2 case labels + reset rhs.
        let contexts: Vec<SiteContext> = sites.iter().map(|s| s.context).collect();
        assert!(contexts.contains(&SiteContext::AssignRhs));
        assert!(contexts.contains(&SiteContext::IfCond));
        assert!(contexts.contains(&SiteContext::CaseSubject));
        assert!(contexts.contains(&SiteContext::CaseLabel));
        assert!(contexts.contains(&SiteContext::ProcRhs));
        assert_eq!(sites.len(), 10);
        // Indices are dense and ordered.
        for (i, site) in sites.iter().enumerate() {
            assert_eq!(site.index, i);
        }
    }

    #[test]
    fn affected_signals_capture_branch_targets() {
        let module = parse_module(SRC).unwrap();
        let sites = collect_sites(&module);
        let if_site = sites
            .iter()
            .find(|s| s.context == SiteContext::IfCond)
            .unwrap();
        assert_eq!(if_site.affected, vec!["y".to_string()]);
        let assign_site = &sites[0];
        assert_eq!(assign_site.affected, vec!["gated".to_string()]);
    }

    #[test]
    fn replace_site_changes_only_that_site() {
        let module = parse_module(SRC).unwrap();
        let sites = collect_sites(&module);
        let target = sites
            .iter()
            .find(|s| {
                s.context == SiteContext::AssignRhs && s.affected == vec!["gated".to_string()]
            })
            .unwrap();
        let replacement = svparse::Expr::binary(
            svparse::BinaryOp::BitOr,
            svparse::Expr::ident("a"),
            svparse::Expr::ident("b"),
        );
        let mutated = replace_site(&module, target.index, replacement);
        let golden_text = emit_module(&module);
        let buggy_text = emit_module(&mutated);
        let differing: Vec<(&str, &str)> = golden_text
            .lines()
            .zip(buggy_text.lines())
            .filter(|(a, b)| a != b)
            .collect();
        assert_eq!(differing.len(), 1);
        assert!(differing[0].1.contains("a | b"));
    }

    #[test]
    fn replace_out_of_range_is_identity() {
        let module = parse_module(SRC).unwrap();
        let mutated = replace_site(&module, 999, svparse::Expr::num(0));
        assert_eq!(emit_module(&mutated), emit_module(&module));
    }

    #[test]
    fn collect_and_replace_agree_on_every_index() {
        let module = parse_module(SRC).unwrap();
        let sites = collect_sites(&module);
        for site in &sites {
            // Replacing the site with a marker literal changes the canonical text.
            let mutated = replace_site(&module, site.index, svparse::Expr::num(63));
            assert_ne!(
                emit_module(&mutated),
                emit_module(&module),
                "site {} ({:?}) was not reachable by replace_site",
                site.index,
                site.context
            );
        }
    }
}
