//! The bug taxonomy of Table I of the AssertSolver paper.
//!
//! Every injected bug carries three orthogonal labels:
//!
//! * [`BugKind`] — *what* was changed: a variable, a value, or an operator;
//! * [`Structural`] — *where* it was changed: inside a conditional statement
//!   (`Cond`) or not (`Non_cond`);
//! * [`Visibility`] — *how the assertion sees it*: the bug writes a signal that
//!   appears directly in the failing assertion (`Direct`) or only reaches it through
//!   the fan-in cone (`Indirect`).
//!
//! The paper's Table II tabulates dataset counts along each of these three axes; the
//! reproduction mirrors that structure exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of edit the bug is (Table I rows *Var*, *Value*, *Op*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BugKind {
    /// Incorrect variable name (`out = in;` → `out = other;`).
    Var,
    /// Incorrect constant, value or bit width (`out = 4'b1010;` → `out = 4'b1110;`).
    Value,
    /// Misused operator (`out = a | b;` → `out = a & b;`), including flipped
    /// conditions.
    Op,
}

impl BugKind {
    /// All kinds, in the order Table II reports them.
    pub fn all() -> [BugKind; 3] {
        [BugKind::Var, BugKind::Value, BugKind::Op]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            BugKind::Var => "Var",
            BugKind::Value => "Value",
            BugKind::Op => "Op",
        }
    }
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether the bug sits in a conditional statement (Table I rows *Cond*, *Non_cond*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Structural {
    /// The edited expression is the condition of an `if`/`case`.
    Cond,
    /// The edit is anywhere else (right-hand sides, continuous assigns, …).
    NonCond,
}

impl Structural {
    /// Both variants, in table order.
    pub fn all() -> [Structural; 2] {
        [Structural::Cond, Structural::NonCond]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Structural::Cond => "Cond",
            Structural::NonCond => "Non_cond",
        }
    }
}

impl fmt::Display for Structural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the failing assertion observes the bug (Table I rows *Direct*, *Indirect*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Visibility {
    /// A signal written by the buggy statement appears in the failing assertion.
    Direct,
    /// The bug only reaches the assertion through intermediate signals.
    Indirect,
}

impl Visibility {
    /// Both variants, in table order.
    pub fn all() -> [Visibility; 2] {
        [Visibility::Direct, Visibility::Indirect]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Visibility::Direct => "Direct",
            Visibility::Indirect => "Indirect",
        }
    }
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The complete Table-I profile of one bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BugProfile {
    /// What was edited.
    pub kind: BugKind,
    /// Whether the edit is inside a conditional.
    pub structural: Structural,
    /// Whether the failing assertion sees the edited signal directly.
    pub visibility: Visibility,
}

impl BugProfile {
    /// Creates a profile.
    pub fn new(kind: BugKind, structural: Structural, visibility: Visibility) -> Self {
        Self {
            kind,
            structural,
            visibility,
        }
    }

    /// All seven Table-I labels that apply to this bug, in table order.
    pub fn labels(&self) -> Vec<&'static str> {
        vec![
            self.visibility.label(),
            self.kind.label(),
            self.structural.label(),
        ]
    }
}

impl fmt::Display for BugProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.visibility.label(),
            self.kind.label(),
            self.structural.label()
        )
    }
}

/// One row of Table I: a bug type with its description and example forms.
///
/// Serializable but not deserializable: the row text is `&'static str` borrowed from
/// the paper's verbatim table, which an owned JSON tree cannot provide.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TaxonomyRow {
    /// Type label (`Direct`, `Indirect`, `Var`, `Value`, `Op`, `Cond`, `Non_cond`).
    pub label: &'static str,
    /// Prose description from the paper.
    pub description: &'static str,
    /// Expected (golden) form.
    pub expected: &'static str,
    /// Unexpected (buggy) form.
    pub unexpected: &'static str,
    /// Example assertion, when the row's example shows one.
    pub assertion: Option<&'static str>,
}

/// The seven rows of Table I, verbatim from the paper.
pub fn table1_rows() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            label: "Direct",
            description: "Bug signal appears directly in the assertion.",
            expected: "out <= in;",
            unexpected: "out <= in + 1;",
            assertion: Some("assert(out == in)"),
        },
        TaxonomyRow {
            label: "Indirect",
            description: "Bug signal does not appear directly in the assertion.",
            expected: "temp <= in; out <= temp;",
            unexpected: "temp <= in + 1; out <= temp;",
            assertion: Some("assert(out == in)"),
        },
        TaxonomyRow {
            label: "Var",
            description: "Incorrect variable name or type.",
            expected: "out = in;",
            unexpected: "out = in_b;",
            assertion: None,
        },
        TaxonomyRow {
            label: "Value",
            description: "Incorrect variable values, constants, or signal bit widths.",
            expected: "out = 4'b1010;",
            unexpected: "out = 4'b1110;",
            assertion: None,
        },
        TaxonomyRow {
            label: "Op",
            description: "Misuse of operators.",
            expected: "out = a | b;",
            unexpected: "out = a & b;",
            assertion: None,
        },
        TaxonomyRow {
            label: "Cond",
            description: "Bug in conditional statement (e.g., if, always).",
            expected: "if (valid) out <= in;",
            unexpected: "if (!valid) out <= in;",
            assertion: None,
        },
        TaxonomyRow {
            label: "Non_cond",
            description: "Bug unrelated to conditional statements.",
            expected: "if (valid) out <= in;",
            unexpected: "if (valid) out <= in_b;",
            assertion: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_in_paper_order() {
        let rows = table1_rows();
        let labels: Vec<&str> = rows.iter().map(|r| r.label).collect();
        assert_eq!(
            labels,
            vec!["Direct", "Indirect", "Var", "Value", "Op", "Cond", "Non_cond"]
        );
    }

    #[test]
    fn profile_labels_cover_three_axes() {
        let profile = BugProfile::new(BugKind::Op, Structural::Cond, Visibility::Direct);
        assert_eq!(profile.labels(), vec!["Direct", "Op", "Cond"]);
        assert_eq!(profile.to_string(), "Direct/Op/Cond");
    }

    #[test]
    fn axis_enumerations() {
        assert_eq!(BugKind::all().len(), 3);
        assert_eq!(Structural::all().len(), 2);
        assert_eq!(Visibility::all().len(), 2);
        assert_eq!(BugKind::Value.to_string(), "Value");
        assert_eq!(Structural::NonCond.to_string(), "Non_cond");
        assert_eq!(Visibility::Indirect.to_string(), "Indirect");
    }
}
