//! Expression-level mutation operators.
//!
//! Each operator takes an expression and rewrites exactly one node, returning `None`
//! when the expression offers no applicable site.  The [`crate::inject`] module picks
//! the statement and drives these operators; keeping them small and pure makes them
//! easy to test and reuse (the repair model's fix generator applies the *inverse*
//! candidates of the same operator families).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use svparse::{BinaryOp, Expr, Literal, UnaryOp};

/// Replaces one identifier occurrence with a different name drawn from `candidates`.
///
/// Returns `None` when the expression contains no identifiers or no candidate differs
/// from the chosen one.
pub fn mutate_var(expr: &Expr, candidates: &[String], rng: &mut StdRng) -> Option<Expr> {
    let idents = collect_ident_count(expr);
    if idents == 0 || candidates.is_empty() {
        return None;
    }
    // Try a handful of (site, replacement) combinations before giving up.
    for _ in 0..8 {
        let site = rng.gen_range(0..idents);
        let replacement = candidates.choose(rng)?.clone();
        let mut changed = false;
        let mutated = rewrite_idents(expr, &mut |i, name| {
            if i == site && name != replacement {
                changed = true;
                replacement.clone()
            } else {
                name.to_string()
            }
        });
        if changed {
            return Some(mutated);
        }
    }
    None
}

/// Perturbs one numeric literal (off-by-one, bit flip, zeroing, or width change).
pub fn mutate_value(expr: &Expr, rng: &mut StdRng) -> Option<Expr> {
    let literals = collect_literal_count(expr);
    if literals == 0 {
        return None;
    }
    let site = rng.gen_range(0..literals);
    let strategy = rng.gen_range(0..4u8);
    let mut changed = false;
    let bit_to_flip = rng.gen_range(0..64u32);
    let mutated = rewrite_literals(expr, &mut |i, lit| {
        if i != site {
            return *lit;
        }
        let width = lit.width.unwrap_or(32);
        let max = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let new_value = match strategy {
            0 => (lit.value.wrapping_add(1)) & max,
            1 => lit.value.wrapping_sub(1) & max,
            2 => (lit.value ^ (1 << (bit_to_flip % width.max(1)))) & max,
            _ => {
                if lit.value == 0 {
                    max
                } else {
                    0
                }
            }
        };
        if new_value != lit.value {
            changed = true;
            Literal {
                value: new_value,
                ..*lit
            }
        } else {
            // Degenerate case (e.g. 1-bit literal where +1 == flip): force a change.
            changed = true;
            Literal {
                value: (!lit.value) & max,
                ..*lit
            }
        }
    });
    if changed {
        Some(mutated)
    } else {
        None
    }
}

/// Replaces one binary operator with a confusable alternative, or toggles a logical
/// negation at the root (the classic `if (valid)` → `if (!valid)` flip).
pub fn mutate_op(expr: &Expr, rng: &mut StdRng) -> Option<Expr> {
    let ops = collect_binop_count(expr);
    // One extra "virtual site" stands for toggling negation at the root.
    let total_sites = ops + 1;
    let site = rng.gen_range(0..total_sites);
    if site == ops {
        return Some(toggle_negation(expr));
    }
    let mut changed = false;
    let mut picks: Vec<BinaryOp> = Vec::new();
    if let Some(current) = nth_binop(expr, site) {
        picks.push(confusable_op(current, rng));
    }
    let mutated = rewrite_binops(expr, &mut |i, op| {
        if i == site {
            let replacement = picks.first().copied().unwrap_or(op);
            if replacement != op {
                changed = true;
            }
            replacement
        } else {
            op
        }
    });
    if changed {
        Some(mutated)
    } else {
        Some(toggle_negation(expr))
    }
}

/// Wraps the expression in a logical negation, or strips one if already present.
pub fn toggle_negation(expr: &Expr) -> Expr {
    match expr {
        Expr::Unary(UnaryOp::LogicalNot, inner) => (**inner).clone(),
        other => Expr::unary(UnaryOp::LogicalNot, other.clone()),
    }
}

/// Operators that engineers plausibly confuse with `op`, from the same family.
pub fn confusable_op(op: BinaryOp, rng: &mut StdRng) -> BinaryOp {
    let family: &[BinaryOp] = match op {
        BinaryOp::Add | BinaryOp::Sub => &[BinaryOp::Add, BinaryOp::Sub],
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            &[BinaryOp::Mul, BinaryOp::Div, BinaryOp::Mod]
        }
        BinaryOp::Shl | BinaryOp::Shr => &[BinaryOp::Shl, BinaryOp::Shr],
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            &[BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge]
        }
        BinaryOp::Eq | BinaryOp::Ne => &[BinaryOp::Eq, BinaryOp::Ne],
        BinaryOp::BitAnd | BinaryOp::BitOr | BinaryOp::BitXor => {
            &[BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor]
        }
        BinaryOp::LogicalAnd | BinaryOp::LogicalOr => &[BinaryOp::LogicalAnd, BinaryOp::LogicalOr],
    };
    let alternatives: Vec<BinaryOp> = family.iter().copied().filter(|o| *o != op).collect();
    *alternatives.choose(rng).unwrap_or(&op)
}

/// Enumerates every single-operator replacement of `expr` (used by the repair model's
/// fix-candidate generator, which explores the inverse of the injection space).
pub fn enumerate_op_rewrites(expr: &Expr) -> Vec<Expr> {
    let count = collect_binop_count(expr);
    let mut out = Vec::new();
    for site in 0..count {
        let current = nth_binop(expr, site).expect("site index in range");
        for replacement in BinaryOp::all() {
            if *replacement == current || !same_family(current, *replacement) {
                continue;
            }
            let rewritten = rewrite_binops(expr, &mut |i, op| {
                if i == site {
                    *replacement
                } else {
                    op
                }
            });
            out.push(rewritten);
        }
    }
    out.push(toggle_negation(expr));
    out
}

/// Enumerates single-identifier substitutions of `expr` over the candidate pool.
pub fn enumerate_var_rewrites(expr: &Expr, candidates: &[String]) -> Vec<Expr> {
    let count = collect_ident_count(expr);
    let mut out = Vec::new();
    for site in 0..count {
        for candidate in candidates {
            let mut changed = false;
            let rewritten = rewrite_idents(expr, &mut |i, name| {
                if i == site && name != *candidate {
                    changed = true;
                    candidate.clone()
                } else {
                    name.to_string()
                }
            });
            if changed {
                out.push(rewritten);
            }
        }
    }
    out
}

/// Enumerates small perturbations of every literal in `expr`.
pub fn enumerate_value_rewrites(expr: &Expr) -> Vec<Expr> {
    let count = collect_literal_count(expr);
    let mut out = Vec::new();
    for site in 0..count {
        for delta in [-1i64, 1, 2, -2] {
            let mut changed = false;
            let rewritten = rewrite_literals(expr, &mut |i, lit| {
                if i == site {
                    let width = lit.width.unwrap_or(32);
                    let max = if width >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << width) - 1
                    };
                    let value = (lit.value as i64).wrapping_add(delta).max(0) as u64 & max;
                    if value != lit.value {
                        changed = true;
                    }
                    Literal { value, ..*lit }
                } else {
                    *lit
                }
            });
            if changed {
                out.push(rewritten);
            }
        }
    }
    out
}

fn same_family(a: BinaryOp, b: BinaryOp) -> bool {
    use BinaryOp::*;
    let family = |op: BinaryOp| match op {
        Add | Sub => 0,
        Mul | Div | Mod => 1,
        Shl | Shr => 2,
        Lt | Le | Gt | Ge => 3,
        Eq | Ne => 4,
        BitAnd | BitOr | BitXor => 5,
        LogicalAnd | LogicalOr => 6,
    };
    family(a) == family(b)
}

// --- small structural rewriting helpers -------------------------------------------

fn collect_ident_count(expr: &Expr) -> usize {
    let mut count = 0;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Ident(_)) {
            count += 1;
        }
    });
    count
}

fn collect_literal_count(expr: &Expr) -> usize {
    let mut count = 0;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Number(_)) {
            count += 1;
        }
    });
    count
}

fn collect_binop_count(expr: &Expr) -> usize {
    let mut count = 0;
    expr.walk(&mut |e| {
        if matches!(e, Expr::Binary(_, _, _)) {
            count += 1;
        }
    });
    count
}

fn nth_binop(expr: &Expr, site: usize) -> Option<BinaryOp> {
    let mut found = None;
    let mut index = 0usize;
    expr.walk(&mut |e| {
        if let Expr::Binary(op, _, _) = e {
            if index == site && found.is_none() {
                found = Some(*op);
            }
            index += 1;
        }
    });
    found
}

fn rewrite_idents(expr: &Expr, rename: &mut impl FnMut(usize, &str) -> String) -> Expr {
    let mut counter = 0usize;
    map_expr(expr, &mut |e| {
        if let Expr::Ident(name) = e {
            let site = counter;
            counter += 1;
            Some(Expr::Ident(rename(site, name)))
        } else {
            None
        }
    })
}

fn rewrite_literals(expr: &Expr, edit: &mut impl FnMut(usize, &Literal) -> Literal) -> Expr {
    let mut counter = 0usize;
    map_expr(expr, &mut |e| {
        if let Expr::Number(lit) = e {
            let site = counter;
            counter += 1;
            Some(Expr::Number(edit(site, lit)))
        } else {
            None
        }
    })
}

fn rewrite_binops(expr: &Expr, edit: &mut impl FnMut(usize, BinaryOp) -> BinaryOp) -> Expr {
    let mut counter = 0usize;
    rewrite_binops_inner(expr, &mut counter, edit)
}

fn rewrite_binops_inner(
    expr: &Expr,
    counter: &mut usize,
    edit: &mut impl FnMut(usize, BinaryOp) -> BinaryOp,
) -> Expr {
    match expr {
        Expr::Binary(op, lhs, rhs) => {
            // Pre-order: visit this operator before descending, matching walk().
            let site = *counter;
            *counter += 1;
            let new_op = edit(site, *op);
            let new_lhs = rewrite_binops_inner(lhs, counter, edit);
            let new_rhs = rewrite_binops_inner(rhs, counter, edit);
            Expr::Binary(new_op, Box::new(new_lhs), Box::new(new_rhs))
        }
        other => map_children(other, &mut |child| {
            rewrite_binops_inner(child, counter, edit)
        }),
    }
}

/// Applies `f` to every node pre-order; when `f` returns `Some`, the replacement is
/// used and children are *not* visited (the replacement already incorporates them).
fn map_expr(expr: &Expr, f: &mut impl FnMut(&Expr) -> Option<Expr>) -> Expr {
    if let Some(replacement) = f(expr) {
        return replacement;
    }
    map_children(expr, &mut |child| map_expr(child, f))
}

fn map_children(expr: &Expr, recurse: &mut impl FnMut(&Expr) -> Expr) -> Expr {
    match expr {
        Expr::Number(_) | Expr::Ident(_) | Expr::Part(_, _) => expr.clone(),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(recurse(inner))),
        Expr::Binary(op, a, b) => Expr::Binary(*op, Box::new(recurse(a)), Box::new(recurse(b))),
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(recurse(c)),
            Box::new(recurse(a)),
            Box::new(recurse(b)),
        ),
        Expr::Bit(name, idx) => Expr::Bit(name.clone(), Box::new(recurse(idx))),
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(&mut *recurse).collect()),
        Expr::Repeat(n, inner) => Expr::Repeat(*n, Box::new(recurse(inner))),
        Expr::Past(inner, n) => Expr::Past(Box::new(recurse(inner)), *n),
        Expr::Rose(inner) => Expr::Rose(Box::new(recurse(inner))),
        Expr::Fell(inner) => Expr::Fell(Box::new(recurse(inner))),
        Expr::Stable(inner) => Expr::Stable(Box::new(recurse(inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use svparse::Parser;

    fn expr(src: &str) -> Expr {
        Parser::new(src).unwrap().parse_expr().unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn mutate_var_changes_exactly_one_ident() {
        let e = expr("a + b");
        let candidates = vec!["c".to_string(), "d".to_string()];
        let mutated = mutate_var(&e, &candidates, &mut rng(1)).unwrap();
        assert_ne!(mutated, e);
        let before = e.idents();
        let after = mutated.idents();
        // Exactly one of a/b was replaced by a candidate.
        let replaced: Vec<_> = before.iter().filter(|n| !after.contains(n)).collect();
        assert_eq!(replaced.len(), 1);
        assert!(after.iter().any(|n| candidates.contains(n)));
    }

    #[test]
    fn mutate_var_needs_candidates_and_idents() {
        assert!(mutate_var(&expr("4'd3 + 4'd1"), &["x".into()], &mut rng(2)).is_none());
        assert!(mutate_var(&expr("a + b"), &[], &mut rng(2)).is_none());
    }

    #[test]
    fn mutate_value_changes_a_literal() {
        let e = expr("cnt + 4'd3");
        for seed in 0..8 {
            let mutated = mutate_value(&e, &mut rng(seed)).unwrap();
            assert_ne!(mutated, e, "seed {seed} produced no change");
        }
        assert!(mutate_value(&expr("a + b"), &mut rng(0)).is_none());
    }

    #[test]
    fn mutate_op_changes_operator_or_negation() {
        let e = expr("a & b");
        let mutated = mutate_op(&e, &mut rng(3)).unwrap();
        assert_ne!(mutated, e);
        // Pure identifier: the only option is toggling negation.
        let neg = mutate_op(&expr("valid"), &mut rng(4)).unwrap();
        assert_eq!(neg, expr("!valid"));
        // Toggling twice round-trips.
        assert_eq!(
            toggle_negation(&toggle_negation(&expr("valid"))),
            expr("valid")
        );
    }

    #[test]
    fn confusable_ops_stay_in_family() {
        let mut r = rng(5);
        for _ in 0..32 {
            assert!(matches!(
                confusable_op(BinaryOp::Add, &mut r),
                BinaryOp::Sub
            ));
            let cmp = confusable_op(BinaryOp::Lt, &mut r);
            assert!(matches!(cmp, BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge));
            let logical = confusable_op(BinaryOp::LogicalAnd, &mut r);
            assert_eq!(logical, BinaryOp::LogicalOr);
        }
    }

    #[test]
    fn enumerate_op_rewrites_covers_families_and_negation() {
        let e = expr("a & b | c");
        let rewrites = enumerate_op_rewrites(&e);
        // Two operators × 2 in-family alternatives each + negation toggle.
        assert_eq!(rewrites.len(), 5);
        assert!(rewrites.iter().all(|r| *r != e));
    }

    #[test]
    fn enumerate_var_rewrites_respects_pool() {
        let e = expr("a + b");
        let rewrites = enumerate_var_rewrites(&e, &["a".into(), "b".into(), "c".into()]);
        // Each of the two sites can become any of the other two names.
        assert_eq!(rewrites.len(), 4);
        for r in &rewrites {
            assert_ne!(r, &e);
        }
    }

    #[test]
    fn enumerate_value_rewrites_perturbs_literals() {
        let e = expr("cnt == 2'd3");
        let rewrites = enumerate_value_rewrites(&e);
        assert!(!rewrites.is_empty());
        assert!(rewrites.iter().all(|r| *r != e));
    }

    #[test]
    fn deterministic_given_seed() {
        let e = expr("a + b - 4'd7");
        let m1 = mutate_value(&e, &mut rng(9));
        let m2 = mutate_value(&e, &mut rng(9));
        assert_eq!(m1, m2);
    }
}
