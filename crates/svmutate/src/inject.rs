//! Random bug injection.
//!
//! [`BugInjector`] plays the role of Claude-3.5 in Stage 2 of the paper's pipeline:
//! given a golden module it produces "random bugs" across the Table-I taxonomy.  The
//! downstream pipeline then validates each candidate exactly like the paper does —
//! re-compiling it (svparse) and checking whether it triggers an assertion failure
//! (svverify) — so hallucination-style broken mutants are filtered the same way.

use crate::operators;
use crate::sites::{collect_sites, replace_site, Site};
use crate::taxonomy::{BugKind, Structural};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use svparse::{emit_module, Module};

/// One injected bug: the mutated module plus everything the dataset needs to label it.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedBug {
    /// The mutated (buggy) module.
    pub buggy: Module,
    /// What was edited (Var / Value / Op).
    pub kind: BugKind,
    /// Whether the edit happened inside a conditional construct.
    pub structural: Structural,
    /// Signals whose behaviour the edit influences (used for Direct/Indirect
    /// classification once the failing assertions are known).
    pub affected_signals: Vec<String>,
    /// Human-readable description of the edit.
    pub description: String,
}

/// Seeded random bug injector.
#[derive(Debug, Clone)]
pub struct BugInjector {
    rng: StdRng,
}

impl BugInjector {
    /// Creates an injector from a seed; the same seed reproduces the same bugs.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Injects one bug of a random kind at a random site.
    ///
    /// Returns `None` when the module offers no mutable site (e.g. a module with no
    /// functional logic) or no mutation changed the canonical text.
    pub fn inject(&mut self, golden: &Module) -> Option<InjectedBug> {
        let kind = *[BugKind::Var, BugKind::Value, BugKind::Op]
            .choose(&mut self.rng)
            .expect("non-empty kind list");
        self.inject_with_kind(golden, kind)
            .or_else(|| self.inject_with_kind(golden, BugKind::Op))
    }

    /// Injects one bug of the requested kind.
    pub fn inject_with_kind(&mut self, golden: &Module, kind: BugKind) -> Option<InjectedBug> {
        let sites = collect_sites(golden);
        if sites.is_empty() {
            return None;
        }
        let golden_text = emit_module(golden);
        let candidates = variable_pool(golden);

        // Try several random sites before giving up: not every site supports every
        // kind (e.g. a Value bug needs a literal at the site).
        for _ in 0..16 {
            let site = sites.choose(&mut self.rng)?.clone();
            if let Some(bug) = self.try_site(golden, &golden_text, &site, kind, &candidates) {
                return Some(bug);
            }
        }
        // Deterministic fallback: scan all sites in order.
        for site in &sites {
            if let Some(bug) = self.try_site(golden, &golden_text, site, kind, &candidates) {
                return Some(bug);
            }
        }
        None
    }

    /// Injects up to `count` distinct bugs (distinct canonical texts).
    pub fn inject_batch(&mut self, golden: &Module, count: usize) -> Vec<InjectedBug> {
        let mut seen = vec![emit_module(golden)];
        let mut bugs = Vec::new();
        let mut attempts = 0usize;
        while bugs.len() < count && attempts < count * 8 {
            attempts += 1;
            let kind = match attempts % 3 {
                0 => BugKind::Var,
                1 => BugKind::Value,
                _ => BugKind::Op,
            };
            if let Some(bug) = self.inject_with_kind(golden, kind) {
                let text = emit_module(&bug.buggy);
                if !seen.contains(&text) {
                    seen.push(text);
                    bugs.push(bug);
                }
            }
        }
        bugs
    }

    fn try_site(
        &mut self,
        golden: &Module,
        golden_text: &str,
        site: &Site,
        kind: BugKind,
        candidates: &[String],
    ) -> Option<InjectedBug> {
        let mutated_expr = match kind {
            BugKind::Var => operators::mutate_var(&site.expr, candidates, &mut self.rng)?,
            BugKind::Value => operators::mutate_value(&site.expr, &mut self.rng)?,
            BugKind::Op => {
                // Favour the classic negated-condition bug on conditional sites.
                if site.context.is_conditional() && self.rng.gen_bool(0.4) {
                    operators::toggle_negation(&site.expr)
                } else {
                    operators::mutate_op(&site.expr, &mut self.rng)?
                }
            }
        };
        let buggy = replace_site(golden, site.index, mutated_expr.clone());
        let buggy_text = emit_module(&buggy);
        if buggy_text == golden_text {
            return None;
        }
        // The mutant must still compile (Stage-2 "eliminate syntax errors" step).
        if svparse::compile_check(&buggy_text).is_err() {
            return None;
        }
        let structural = if site.context.is_conditional() {
            Structural::Cond
        } else {
            Structural::NonCond
        };
        Some(InjectedBug {
            buggy,
            kind,
            structural,
            affected_signals: site.affected.clone(),
            description: format!(
                "{kind} bug at {:?} site: `{}` -> `{}`",
                site.context,
                svparse::pretty::emit_expr(&site.expr),
                svparse::pretty::emit_expr(&mutated_expr)
            ),
        })
    }
}

/// Pool of identifier names a Var mutation may substitute: every declared signal
/// except the clock (swapping the clock produces designs our single-clock simulator
/// rejects anyway).
fn variable_pool(module: &Module) -> Vec<String> {
    let clock_like = |name: &str| name == "clk" || name == "clock";
    module
        .declared_names()
        .into_iter()
        .filter(|n| !clock_like(n))
        .collect()
}

impl Default for BugInjector {
    fn default() -> Self {
        Self::new(0xB06)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svparse::parse_module;

    const SRC: &str = r#"
module dut(input clk, input rst_n, input en, input [3:0] data, output reg [3:0] acc, output full);
  assign full = acc == 4'd15;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) acc <= 4'd0;
    else if (en) acc <= acc + data;
  end
  property no_wrap;
    @(posedge clk) disable iff (!rst_n) full |-> ##1 acc <= 4'd15;
  endproperty
  assert property (no_wrap);
endmodule
"#;

    #[test]
    fn injects_each_kind() {
        let golden = parse_module(SRC).unwrap();
        let mut injector = BugInjector::new(7);
        for kind in BugKind::all() {
            let bug = injector
                .inject_with_kind(&golden, kind)
                .unwrap_or_else(|| panic!("no {kind} bug injected"));
            assert_eq!(bug.kind, kind);
            assert_ne!(emit_module(&bug.buggy), emit_module(&golden));
            assert!(!bug.affected_signals.is_empty());
            assert!(!bug.description.is_empty());
        }
    }

    #[test]
    fn injected_bug_still_compiles() {
        let golden = parse_module(SRC).unwrap();
        let mut injector = BugInjector::new(13);
        for _ in 0..20 {
            if let Some(bug) = injector.inject(&golden) {
                let text = emit_module(&bug.buggy);
                assert!(
                    svparse::compile_check(&text).is_ok(),
                    "mutant must compile:\n{text}"
                );
            }
        }
    }

    #[test]
    fn batch_produces_distinct_mutants() {
        let golden = parse_module(SRC).unwrap();
        let mut injector = BugInjector::new(21);
        let bugs = injector.inject_batch(&golden, 10);
        assert!(
            bugs.len() >= 5,
            "expected several distinct mutants, got {}",
            bugs.len()
        );
        let mut texts: Vec<String> = bugs.iter().map(|b| emit_module(&b.buggy)).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), bugs.len());
    }

    #[test]
    fn conditional_sites_are_labelled_cond() {
        let golden = parse_module(SRC).unwrap();
        let mut injector = BugInjector::new(3);
        let mut saw_cond = false;
        let mut saw_noncond = false;
        for _ in 0..40 {
            if let Some(bug) = injector.inject(&golden) {
                match bug.structural {
                    Structural::Cond => saw_cond = true,
                    Structural::NonCond => saw_noncond = true,
                }
            }
        }
        assert!(saw_cond, "never produced a Cond bug");
        assert!(saw_noncond, "never produced a Non_cond bug");
    }

    #[test]
    fn deterministic_per_seed() {
        let golden = parse_module(SRC).unwrap();
        let a = BugInjector::new(99)
            .inject(&golden)
            .map(|b| emit_module(&b.buggy));
        let b = BugInjector::new(99)
            .inject(&golden)
            .map(|b| emit_module(&b.buggy));
        assert_eq!(a, b);
    }

    #[test]
    fn module_without_logic_yields_none() {
        let golden = parse_module("module empty(input a, output b); endmodule").unwrap();
        assert!(BugInjector::new(1).inject(&golden).is_none());
    }
}
