//! Single-model serving vs a 3-rung escalation ladder, cold vs warm.
//!
//! Four measured modes over one mixed corpus:
//!
//! * `single-cold` / `single-warm` — the strongest rung alone through
//!   `evaluate_model`, against an empty and then a populated cache directory;
//! * `ladder-cold` / `ladder-warm` — the full cheapest-first escalation ladder
//!   through `evaluate_ladder` (per-model + A/B + escalation in one pass),
//!   against its own cache directory.
//!
//! Warm passes rebuild every pool from scratch — the only carried-over state is
//! the per-identity snapshot files — and each mode's warm evaluation is
//! asserted byte-identical to its cold one before any number is reported.  One
//! machine-readable `BENCH_SUMMARY {...}` line per mode feeds CI trajectories:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"route","mode":"ladder-cold","cases":8,...}
//! BENCH_SUMMARY {"bench":"route","mode":"ladder-warm",...,"speedup_vs_cold":7.9}
//! ```
//!
//! Run with `cargo bench --bench route`.  (Warm speedup comes from skipping
//! recomputation, not parallelism, so it shows up on the 1-core container.)

use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::sync::Arc;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::{BaselineKind, BaselineModel, RepairModel};

fn corpus() -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(47));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(8);
    entries
}

fn config(dir: &std::path::Path) -> assertsolver::EvalConfig {
    assertsolver::EvalConfig {
        workers: 2,
        verify_workers: 2,
        samples: 4,
        cache_dir: Some(dir.display().to_string()),
        ..assertsolver::EvalConfig::quick(31)
    }
}

fn summary(
    writer: &mut SummaryWriter,
    mode: &str,
    cases: usize,
    secs: f64,
    solved: usize,
    extra: &str,
) {
    writer.emit(format!(
        "{{\"bench\":\"route\",\"mode\":\"{mode}\",\"cases\":{cases},\"samples\":4,\
         \"secs\":{secs:.6},\"solved\":{solved}{extra}}}"
    ));
}

fn main() {
    let base =
        std::env::temp_dir().join(format!("assertsolver-bench-route-{}", std::process::id()));
    let single_dir = base.join("single");
    let ladder_dir = base.join("ladder");
    let _ = std::fs::remove_dir_all(&base);
    let mut writer = SummaryWriter::new("route", 4);
    let entries = corpus();
    println!(
        "route: {} cases x 4 samples, single (strongest rung) vs 3-rung ladder, cold + warm",
        entries.len()
    );
    println!(
        "{:>12} {:>12} {:>10} {:>16}",
        "mode", "wall (s)", "solved", "speedup vs cold"
    );

    // --- Single model: the strongest rung alone. ---
    let strongest = BaselineModel::new(BaselineKind::IterativeReasoner);
    let single_config = config(&single_dir);
    let start = Instant::now();
    let single_cold = assertsolver::evaluate_model(&strongest, &entries, &single_config);
    let single_cold_secs = start.elapsed().as_secs_f64();
    println!(
        "{:>12} {:>12.3} {:>7}/{:<2} {:>16}",
        "single-cold",
        single_cold_secs,
        single_cold.solved_cases(),
        entries.len(),
        "1.00"
    );
    summary(
        &mut writer,
        "single-cold",
        entries.len(),
        single_cold_secs,
        single_cold.solved_cases(),
        "",
    );

    let start = Instant::now();
    let single_warm = assertsolver::evaluate_model(&strongest, &entries, &single_config);
    let single_warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        single_cold, single_warm,
        "warm single run must be byte-identical"
    );
    let single_speedup = single_cold_secs / single_warm_secs;
    println!(
        "{:>12} {:>12.3} {:>7}/{:<2} {:>16.2}",
        "single-warm",
        single_warm_secs,
        single_warm.solved_cases(),
        entries.len(),
        single_speedup
    );
    summary(
        &mut writer,
        "single-warm",
        entries.len(),
        single_warm_secs,
        single_warm.solved_cases(),
        &format!(",\"speedup_vs_cold\":{single_speedup:.2}"),
    );
    black_box(&single_warm);

    // --- 3-rung escalation ladder. ---
    let models: Vec<Arc<dyn RepairModel + Send + Sync>> = [
        BaselineKind::RandomGuess,
        BaselineKind::ConeAnalyst,
        BaselineKind::IterativeReasoner,
    ]
    .into_iter()
    .map(|kind| Arc::new(BaselineModel::new(kind)) as Arc<dyn RepairModel + Send + Sync>)
    .collect();
    let ladder_config = config(&ladder_dir);
    let start = Instant::now();
    let ladder_cold = assertsolver::evaluate_ladder(&models, &entries, &ladder_config);
    let ladder_cold_secs = start.elapsed().as_secs_f64();
    let cold_solved = ladder_cold.evaluation.escalate.solved_cases();
    println!(
        "{:>12} {:>12.3} {:>7}/{:<2} {:>16}",
        "ladder-cold",
        ladder_cold_secs,
        cold_solved,
        entries.len(),
        "1.00"
    );
    summary(
        &mut writer,
        "ladder-cold",
        entries.len(),
        ladder_cold_secs,
        cold_solved,
        &format!(
            ",\"resubmits\":{}",
            ladder_cold.metrics.escalation.verdict_resubmits
        ),
    );

    let start = Instant::now();
    let ladder_warm = assertsolver::evaluate_ladder(&models, &entries, &ladder_config);
    let ladder_warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        ladder_cold.evaluation, ladder_warm.evaluation,
        "warm ladder run must be byte-identical"
    );
    let warm_hits: u64 = ladder_warm
        .metrics
        .backends
        .iter()
        .map(|b| b.service.warm_hits)
        .sum();
    assert!(warm_hits > 0, "warm ladder must replay backend snapshots");
    let ladder_speedup = ladder_cold_secs / ladder_warm_secs;
    println!(
        "{:>12} {:>12.3} {:>7}/{:<2} {:>16.2}",
        "ladder-warm",
        ladder_warm_secs,
        ladder_warm.evaluation.escalate.solved_cases(),
        entries.len(),
        ladder_speedup
    );
    summary(
        &mut writer,
        "ladder-warm",
        entries.len(),
        ladder_warm_secs,
        ladder_warm.evaluation.escalate.solved_cases(),
        &format!(",\"backend_warm_hits\":{warm_hits},\"speedup_vs_cold\":{ladder_speedup:.2}"),
    );
    black_box(&ladder_warm);

    let _ = std::fs::remove_dir_all(&base);
    writer.finish();
}
