//! Criterion bench: cycle-accurate simulation and SVA checking throughput.
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use svgen::{instantiate, Family, FamilyParams};
use svsim::{check_assertions, Design, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let src = instantiate(Family::Accumulator, FamilyParams::default(), 0).source;
    let module = svparse::parse_module(&src).unwrap();
    let design = Design::elaborate(&module).unwrap();
    let stimulus: Vec<svsim::InputVector> = (0..64)
        .map(|i| {
            BTreeMap::from([
                ("rst_n".to_string(), u64::from(i >= 1)),
                ("valid_in".to_string(), u64::from(i % 2 == 0)),
                ("data_in".to_string(), (i * 3) as u64 & 0xF),
            ])
        })
        .collect();
    c.bench_function("simulate_64_cycles", |b| {
        b.iter(|| Simulator::run(&design, std::hint::black_box(&stimulus)).unwrap())
    });
    let trace = Simulator::run(&design, &stimulus).unwrap();
    c.bench_function("check_assertions_64_cycles", |b| {
        b.iter(|| check_assertions(&design, std::hint::black_box(&trace)))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
