//! Async session frontend vs the blocking submit/await surface.
//!
//! A fixed workload of distinct repair sessions (submit → sampled → verify →
//! done) runs four ways: once through the blocking frontend (submit everything,
//! then `wait()` each ticket in order — the one-caller-thread shape), and three
//! times through the `svserve::SessionEngine` at 1, 2 and 4 driver threads.
//! Besides wall-clock, the async modes report the peak concurrent in-flight
//! session count — the number that used to require one OS thread per session.
//!
//! The run emits one machine-readable line per mode — `BENCH_SUMMARY {...}` —
//! so CI logs can be grepped into a trajectory:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"async_frontend","mode":"blocking","sessions":2000,...}
//! BENCH_SUMMARY {"bench":"async_frontend","mode":"async_4","sessions":2000,...,"peak_in_flight":2000}
//! ```
//!
//! Run with `cargo bench --bench async_frontend`.  (The container is 1-core, so
//! wall-clock parity is expected; the payoff measured here is concurrency per
//! thread, not speedup.)

use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::sync::Arc;
use std::time::Instant;
use svmodel::{CaseInput, RepairModel, Response};
use svserve::{
    verdict_key, RepairRequest, RepairService, ServiceConfig, SessionConfig, SessionEngine,
    VerifyConfig, VerifyPool, VerifyRequest,
};

const SESSIONS: usize = 2000;

/// Cheap deterministic model: the bench measures the serving path, not solving.
struct EchoModel;

impl RepairModel for EchoModel {
    fn name(&self) -> &str {
        "echo"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        (0..samples)
            .map(|i| Response {
                bug_line_number: 1 + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("fix {} seed {seed}", case.spec),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); assign y = {tag}; endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        1,
        0.2,
    )
}

fn pools() -> (RepairService<EchoModel>, VerifyPool<String>) {
    let service = RepairService::start(
        Arc::new(EchoModel),
        ServiceConfig {
            workers: 2,
            shard_capacity: 256,
            cache_capacity: 2 * SESSIONS,
            ..ServiceConfig::default()
        },
    );
    let verifier: VerifyPool<String> = VerifyPool::start(
        Arc::new(|case: &String, response: &Response| response.fixed_line.contains(case.as_str())),
        VerifyConfig {
            workers: 2,
            cache_capacity: 2 * SESSIONS,
            ..VerifyConfig::default()
        },
    );
    (service, verifier)
}

fn verify_one(tag: usize, response: Response) -> VerifyRequest<String> {
    let case = format!("spec {tag}");
    let key = verdict_key(&[case.as_bytes()], &response, b"async-frontend-bench");
    VerifyRequest::new(Arc::new(case), response, key)
}

/// The pre-async shape: submit everything, then block on each ticket in order.
fn run_blocking() -> f64 {
    let (service, verifier) = pools();
    let start = Instant::now();
    let tickets: Vec<_> = (0..SESSIONS)
        .map(|tag| service.submit(request(tag)).expect("pool open"))
        .collect();
    let verdicts: Vec<_> = tickets
        .into_iter()
        .enumerate()
        .map(|(tag, ticket)| {
            let outcome = ticket.wait();
            verifier
                .submit(verify_one(tag, outcome.responses[0].clone()))
                .expect("verify pool open")
        })
        .collect();
    let solved = verdicts
        .into_iter()
        .map(|t| t.wait())
        .filter(|v| v.verdict)
        .count();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(solved, SESSIONS);
    black_box(solved);
    service.shutdown();
    verifier.shutdown();
    secs
}

/// The async shape: every session is a waker-scheduled state machine.
fn run_async(drivers: usize) -> (f64, u64) {
    let (service, verifier) = pools();
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(drivers));
    let start = Instant::now();
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|tag| {
            let service = &service;
            let verifier = &verifier;
            async move {
                let outcome = service
                    .submit_async(request(tag))
                    .expect("pool open")
                    .await
                    .expect("pool open")
                    .await;
                let verdict = verifier
                    .submit_async(verify_one(tag, outcome.responses[0].clone()))
                    .expect("verify pool open")
                    .await
                    .expect("verify pool open")
                    .await;
                verdict.verdict
            }
        })
        .collect();
    let outcomes = engine.run_all(sessions);
    let secs = start.elapsed().as_secs_f64();
    let solved = outcomes
        .into_iter()
        .filter(|o| o.completed() == Some(true))
        .count();
    assert_eq!(solved, SESSIONS);
    black_box(solved);
    let peak = engine.metrics().peak_in_flight_sessions;
    service.shutdown();
    verifier.shutdown();
    (secs, peak)
}

fn main() {
    let mut writer = SummaryWriter::new("async_frontend", 4);
    println!("async_frontend: {SESSIONS} sessions (submit -> sample -> verify -> done)");
    println!(
        "{:>10} {:>9} {:>12} {:>16}",
        "mode", "drivers", "wall (s)", "peak in-flight"
    );

    let blocking_secs = run_blocking();
    println!(
        "{:>10} {:>9} {:>12.3} {:>16}",
        "blocking", "-", blocking_secs, "1/thread"
    );
    writer.emit(format!(
        "{{\"bench\":\"async_frontend\",\"mode\":\"blocking\",\"sessions\":{SESSIONS},\"secs\":{blocking_secs:.6}}}"
    ));

    for drivers in [1usize, 2, 4] {
        let (secs, peak) = run_async(drivers);
        println!(
            "{:>10} {:>9} {:>12.3} {:>16}",
            format!("async_{drivers}"),
            drivers,
            secs,
            peak
        );
        writer.emit(format!(
            "{{\"bench\":\"async_frontend\",\"mode\":\"async_{drivers}\",\"sessions\":{SESSIONS},\"secs\":{secs:.6},\"peak_in_flight\":{peak},\"secs_vs_blocking\":{:.2}}}",
            secs / blocking_secs
        ));
    }
    writer.finish();
}
