//! Criterion bench: parser + canonical emitter throughput on family designs.
use criterion::{criterion_group, criterion_main, Criterion};
use svgen::{instantiate, Family, FamilyParams};

fn bench_frontend(c: &mut Criterion) {
    let small = instantiate(Family::Accumulator, FamilyParams::default(), 0).source;
    let large = instantiate(
        Family::RegisterFile,
        FamilyParams {
            width: 8,
            depth: 8,
            variant: 0,
        },
        1,
    )
    .source;
    c.bench_function("parse_small_module", |b| {
        b.iter(|| svparse::parse_module(std::hint::black_box(&small)).unwrap())
    });
    c.bench_function("parse_large_module", |b| {
        b.iter(|| svparse::parse_module(std::hint::black_box(&large)).unwrap())
    });
    let module = svparse::parse_module(&large).unwrap();
    c.bench_function("emit_canonical", |b| {
        b.iter(|| svparse::emit_module(std::hint::black_box(&module)))
    });
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
