//! Criterion bench: bounded assertion checking (the SymbiYosys stand-in).
use criterion::{criterion_group, criterion_main, Criterion};
use svgen::{instantiate, Family, FamilyParams};
use svverify::{BoundedChecker, CheckConfig};

fn bench_verifier(c: &mut Criterion) {
    let golden =
        svparse::parse_module(&instantiate(Family::Counter, FamilyParams::default(), 0).source)
            .unwrap();
    let checker = BoundedChecker::new(CheckConfig {
        depth: 12,
        random_cases: 16,
        ..CheckConfig::default()
    });
    c.bench_function("bounded_check_counter", |b| {
        b.iter(|| checker.check_module(std::hint::black_box(&golden)))
    });
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
