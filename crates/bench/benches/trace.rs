//! Causal-tracing overhead on the quick evaluation protocol: off vs on.
//!
//! The same quick-protocol evaluation runs twice, best of `PASSES` passes
//! each way: once through `evaluate_model` with the trace handle off (every
//! span site pays one branch), and once through `evaluate_model_observed`
//! with a live [`svserve::TraceHandle`] — five spans per session derived,
//! timed and recorded into the shared collector.  The two evaluations are
//! asserted byte-identical, the collected forest is asserted complete (one
//! root per case, ≥95% wall-clock attribution on every session), and the
//! traced wall-clock is asserted within the **5% overhead budget** the
//! tracing plane promises.
//!
//! Two machine-readable `BENCH_SUMMARY {...}` lines feed the
//! `BENCH_trace.json` trajectory:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"trace","mode":"off","cases":8,...}
//! BENCH_SUMMARY {"bench":"trace","mode":"on","cases":8,...,"overhead_pct":0.4}
//! ```
//!
//! Run with `cargo bench --bench trace`.

use assertsolver::{evaluate_model_observed, EvalConfig, EvalVerifier};
use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::AssertSolverModel;
use svserve::{TelemetryHandle, TraceForest, TraceHandle, TracerHandle};

const PASSES: usize = 3;

/// Absolute slack (seconds) on top of the 5% budget: at quick-protocol scale
/// a single scheduler hiccup is bigger than 5% of the run, and the budget is
/// about asymptotic overhead, not timer noise.
const NOISE_FLOOR_SECS: f64 = 0.25;

fn corpus() -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(8);
    entries
}

fn main() {
    let mut writer = SummaryWriter::new("trace", 2);
    let entries = corpus();
    let model = AssertSolverModel::base(9);
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(37)
    };
    println!(
        "trace: {} cases x {} samples, tracing off vs on, best of {PASSES} passes",
        entries.len(),
        config.samples
    );
    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "mode", "wall (s)", "spans", "overhead"
    );

    // --- Tracing off: every span site is one cold branch. ---
    let mut off_secs = f64::INFINITY;
    let mut baseline = None;
    for _ in 0..PASSES {
        let start = Instant::now();
        let evaluation = assertsolver::evaluate_model(&model, &entries, &config);
        off_secs = off_secs.min(start.elapsed().as_secs_f64());
        baseline = Some(evaluation);
    }
    let baseline = baseline.expect("at least one off pass");
    println!("{:>6} {:>12.3} {:>10} {:>14}", "off", off_secs, 0, "1.00");
    writer.emit(format!(
        "{{\"bench\":\"trace\",\"mode\":\"off\",\"cases\":{},\"samples\":{},\"secs\":{off_secs:.6}}}",
        entries.len(),
        config.samples
    ));

    // --- Tracing on: every session derives, times and records its tree. ---
    let mut on_secs = f64::INFINITY;
    let mut spans = 0usize;
    let mut deterministic: Option<String> = None;
    for _ in 0..PASSES {
        let trace = TraceHandle::new(0);
        let verifier = EvalVerifier::start(&config);
        let start = Instant::now();
        let evaluation = evaluate_model_observed(
            &model,
            &entries,
            &config,
            &verifier,
            &TracerHandle::off(),
            &TelemetryHandle::off(),
            &trace,
        );
        on_secs = on_secs.min(start.elapsed().as_secs_f64());
        verifier.shutdown();
        assert_eq!(
            baseline, evaluation,
            "traced evaluation must be byte-identical to the plain one"
        );
        let forest = TraceForest::from_spans(trace.drain());
        spans = forest.len();
        let sessions = forest.sessions();
        assert_eq!(
            sessions.len(),
            entries.len(),
            "one trace root per evaluated case"
        );
        for session in &sessions {
            assert!(
                session.coverage() >= 0.95,
                "session {:016x} attributes only {:.1}% of its wall-clock",
                session.trace,
                100.0 * session.coverage()
            );
        }
        // The deterministic projection is identical across passes — warm
        // caches change wall clocks only.
        let rendered = forest.render_deterministic();
        match &deterministic {
            Some(previous) => assert_eq!(
                previous, &rendered,
                "deterministic projection drifted between passes"
            ),
            None => deterministic = Some(rendered),
        }
        black_box(&forest);
    }
    let overhead = on_secs / off_secs;
    let overhead_pct = (overhead - 1.0) * 100.0;
    println!(
        "{:>6} {:>12.3} {:>10} {:>13.2}x",
        "on", on_secs, spans, overhead
    );
    writer.emit(format!(
        "{{\"bench\":\"trace\",\"mode\":\"on\",\"cases\":{},\"samples\":{},\"secs\":{on_secs:.6},\"spans\":{spans},\"overhead_pct\":{overhead_pct:.1}}}",
        entries.len(),
        config.samples
    ));

    // The acceptance budget: live tracing must cost < 5% wall-clock on the
    // quick protocol (plus an absolute floor so timer noise on a sub-second
    // run cannot flake the gate).
    assert!(
        on_secs <= off_secs * 1.05 + NOISE_FLOOR_SECS,
        "tracing overhead {overhead_pct:.1}% exceeds the 5% budget \
         (off {off_secs:.3}s, on {on_secs:.3}s)"
    );
    writer.finish();
}
