//! Criterion bench: inference latency of the repair models.
use criterion::{criterion_group, criterion_main, Criterion};
use svmodel::{AssertSolverModel, BaselineKind, BaselineModel, CaseInput, RepairModel};

fn bench_solver(c: &mut Criterion) {
    let entry = assertsolver::human_crafted_cases()
        .into_iter()
        .next()
        .expect("human case available");
    let case = CaseInput::from_entry(&entry);
    let base = AssertSolverModel::base(1);
    let strong = BaselineModel::new(BaselineKind::IterativeReasoner);
    c.bench_function("base_model_single_response", |b| {
        b.iter(|| base.solve(std::hint::black_box(&case), 1, 0.2, 3))
    });
    c.bench_function("baseline_reasoner_single_response", |b| {
        b.iter(|| strong.solve(std::hint::black_box(&case), 1, 0.2, 3))
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
