//! Wire-protocol overhead: direct in-process submission vs the loopback
//! transport, which pushes every request and response through the full frame
//! codec (encode → checksum → decode, both directions) without a socket.
//!
//! Two identically configured services serve the same model and seed, so the
//! answers must be identical — the bench asserts response-for-response
//! equality before reporting any number, making it a determinism gate as much
//! as a perf one.  The reported overhead is the codec + dispatch tax a
//! same-host shard pays on top of the service itself.
//!
//! ```text
//! BENCH_SUMMARY {"bench":"wire","mode":"direct","requests":24,...}
//! BENCH_SUMMARY {"bench":"wire","mode":"loopback","requests":24,...,"overhead_vs_direct":1.04}
//! ```
//!
//! Run with `cargo bench --bench wire`.

use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::sync::Arc;
use std::time::Instant;
use svmodel::{AssertSolverModel, CaseInput, RepairModel};
use svserve::{LoopbackTransport, RepairRequest, RepairService, ServiceConfig, ShardFleet};

const REQUESTS: usize = 24;
const SAMPLES: usize = 4;

fn requests() -> Vec<RepairRequest> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(47));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(REQUESTS);
    entries
        .iter()
        .map(|entry| RepairRequest::new(CaseInput::from_entry(entry), SAMPLES, 0.2))
        .collect()
}

fn service() -> Arc<RepairService<AssertSolverModel>> {
    Arc::new(RepairService::start(
        Arc::new(AssertSolverModel::base(7)),
        ServiceConfig::default().with_workers(2).with_seed(13),
    ))
}

fn main() {
    let mut writer = SummaryWriter::new("wire", 2);
    let requests = requests();
    println!(
        "wire: {} requests x {SAMPLES} samples, direct service vs loopback transport",
        requests.len()
    );
    println!(
        "{:>10} {:>12} {:>20}",
        "mode", "wall (s)", "overhead vs direct"
    );

    // Direct: the plain in-process submit path, no codec anywhere.
    let direct_service = service();
    let direct_start = Instant::now();
    let direct: Vec<_> = requests
        .iter()
        .map(|request| {
            direct_service
                .submit(request.clone())
                .expect("pool open")
                .wait()
        })
        .collect();
    let direct_secs = direct_start.elapsed().as_secs_f64();
    println!("{:>10} {:>12.3} {:>20}", "direct", direct_secs, "1.00");
    writer.emit(format!(
        "{{\"bench\":\"wire\",\"mode\":\"direct\",\"requests\":{},\"samples\":{SAMPLES},\"secs\":{:.6}}}",
        requests.len(),
        direct_secs
    ));

    // Loopback: an identically built service behind the frame codec.  A fresh
    // service keeps its cache cold, so both modes pay for every sample.
    let loopback_service = service();
    let fleet = ShardFleet::new(vec![Box::new(LoopbackTransport::new(
        Arc::clone(&loopback_service),
        AssertSolverModel::base(7).identity(),
    )) as Box<dyn svserve::Transport>]);
    let loopback_start = Instant::now();
    let loopback: Vec<_> = requests
        .iter()
        .map(|request| fleet.submit(request).expect("fleet healthy"))
        .collect();
    let loopback_secs = loopback_start.elapsed().as_secs_f64();

    for (idx, (a, b)) in direct.iter().zip(&loopback).enumerate() {
        assert_eq!(
            *a.responses, b.responses,
            "request {idx}: loopback answers must be identical to direct submission"
        );
    }
    let metrics = fleet.metrics();
    assert_eq!(metrics.completed, requests.len() as u64);
    assert_eq!(metrics.wire_errors, 0);
    black_box((&direct, &loopback));

    let overhead = loopback_secs / direct_secs;
    println!(
        "{:>10} {:>12.3} {:>20.2}",
        "loopback", loopback_secs, overhead
    );
    writer.emit(format!(
        "{{\"bench\":\"wire\",\"mode\":\"loopback\",\"requests\":{},\"samples\":{SAMPLES},\"secs\":{:.6},\"overhead_vs_direct\":{:.2}}}",
        requests.len(),
        loopback_secs,
        overhead
    ));

    drop(fleet);
    Arc::try_unwrap(loopback_service)
        .ok()
        .expect("sole owner")
        .shutdown();
    Arc::try_unwrap(direct_service)
        .ok()
        .expect("sole owner")
        .shutdown();
    writer.finish();
}
