//! Verify-pool throughput as the worker count scales (1/2/4/8).
//!
//! Each measurement drives a fixed corpus of `(case, candidate response)` verdict
//! jobs through `svserve::verify_scoped` end to end (submit → shard queue →
//! micro-batch → bounded-checker judge → ticket), with a fresh pool per pass so the
//! verdict cache is cold and every job costs a real `response_is_correct` verdict.
//!
//! Besides the human-readable table, every worker count emits one machine-readable
//! line — `BENCH_SUMMARY {...}` — so future `BENCH_*.json` trajectories can track
//! verifier throughput over time:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"verify_pool","workers":4,"jobs":96,...,"speedup_vs_1":2.71}
//! ```
//!
//! Run with `cargo bench --bench verify_pool`.  (On a single-core container the
//! speedup column naturally stays ~1.0; on multi-core hosts 4 workers are expected
//! to clear 1.5× over 1 worker, since verdicts are embarrassingly parallel.)

use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::sync::Arc;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, CaseInput, RepairModel};
use svserve::{verdict_key, verify_scoped, VerifyConfig, VerifyRequest};
use svverify::{CheckConfig, VerifyOracle};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PASSES_PER_COUNT: usize = 3;

/// Builds a fixed verdict workload: pipeline + human cases, each with several
/// model-sampled candidates, deduplicated so every job computes a distinct verdict.
fn verdict_jobs(check: &CheckConfig) -> Vec<VerifyRequest<SvaBugEntry>> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(41));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(12);
    let model = AssertSolverModel::base(3);
    let fingerprint = check.fingerprint();

    let mut seen = std::collections::BTreeSet::new();
    let mut jobs = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let case = Arc::new(entry.clone());
        let responses = model.solve(&CaseInput::from_entry(entry), 6, 0.6, 0xBE_EC4 + i as u64);
        for response in responses {
            let key = verdict_key(
                &[
                    entry.buggy_source.as_bytes(),
                    &entry.bug_line_number.to_le_bytes(),
                    entry.fixed_line.as_bytes(),
                ],
                &response,
                &fingerprint,
            );
            if seen.insert(key) {
                jobs.push(VerifyRequest::new(Arc::clone(&case), response, key));
            }
        }
    }
    jobs
}

fn main() {
    let check = CheckConfig {
        depth: 10,
        random_cases: 8,
        ..CheckConfig::default()
    };
    let jobs = verdict_jobs(&check);
    let oracle = VerifyOracle::new(check);
    let judge = |entry: &SvaBugEntry, response: &svmodel::Response| {
        assertsolver::response_is_correct(entry, response, &oracle)
    };
    println!(
        "verify_pool: {} distinct verdict jobs, best of {PASSES_PER_COUNT} passes per worker count",
        jobs.len()
    );

    let mut writer = SummaryWriter::new("verify_pool", WORKER_COUNTS.len());
    let mut baseline_secs = None;
    for workers in WORKER_COUNTS {
        let mut best_secs = f64::INFINITY;
        let mut accepted = 0usize;
        for _ in 0..PASSES_PER_COUNT {
            // A fresh pool per pass: the verdict cache starts cold, so the numbers
            // measure the judging path rather than cache hits.
            let start = Instant::now();
            let outcomes = verify_scoped(
                &judge,
                VerifyConfig::default().with_workers(workers),
                |verifier| verifier.judge_all(black_box(jobs.clone())),
            );
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(outcomes.len(), jobs.len());
            accepted = outcomes.iter().filter(|o| o.verdict).count();
            best_secs = best_secs.min(elapsed);
        }
        let throughput = jobs.len() as f64 / best_secs;
        let speedup = match baseline_secs {
            None => {
                baseline_secs = Some(best_secs);
                1.0
            }
            Some(base) => base / best_secs,
        };
        println!(
            "  {workers} worker(s): {best_secs:>7.3} s, {throughput:>8.1} verdicts/s, speedup {speedup:>5.2}x ({accepted} accepted)"
        );
        writer.emit(format!(
            "{{\"bench\":\"verify_pool\",\"workers\":{workers},\"jobs\":{},\"seconds\":{best_secs:.4},\"verdicts_per_sec\":{throughput:.1},\"speedup_vs_1\":{speedup:.2}}}",
            jobs.len()
        ));
    }
    writer.finish();
}
