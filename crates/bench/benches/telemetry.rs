//! Telemetry-registry overhead on the quick evaluation protocol: off vs on.
//!
//! The same quick-protocol evaluation runs twice, best of `PASSES` passes
//! each way: once through `evaluate_model` with the telemetry handle off
//! (every instrumented site pays one branch), and once through
//! `evaluate_model_instrumented` with a live registry — stage timers, pool
//! latency histograms, rung costs and the dual-clock span wall all recording
//! into lock-free atomics.  The two evaluations are asserted byte-identical,
//! and the instrumented wall-clock is asserted within the **5% overhead
//! budget** the telemetry plane promises.
//!
//! Two machine-readable `BENCH_SUMMARY {...}` lines feed the
//! `BENCH_telemetry.json` trajectory:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"telemetry","mode":"off","cases":8,...}
//! BENCH_SUMMARY {"bench":"telemetry","mode":"on","cases":8,...,"overhead_pct":0.7}
//! ```
//!
//! Run with `cargo bench --bench telemetry`.

use assertsolver::{evaluate_model_instrumented, EvalConfig};
use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::sync::Arc;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::AssertSolverModel;
use svserve::{MetricsRegistry, TelemetryHandle};

const PASSES: usize = 3;

/// Absolute slack (seconds) on top of the 5% budget: at quick-protocol scale
/// a single scheduler hiccup is bigger than 5% of the run, and the budget is
/// about asymptotic overhead, not timer noise.
const NOISE_FLOOR_SECS: f64 = 0.25;

fn corpus() -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(8);
    entries
}

fn main() {
    let mut writer = SummaryWriter::new("telemetry", 2);
    let entries = corpus();
    let model = AssertSolverModel::base(9);
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(37)
    };
    println!(
        "telemetry: {} cases x {} samples, registry off vs on, best of {PASSES} passes",
        entries.len(),
        config.samples
    );
    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "mode", "wall (s)", "series", "overhead"
    );

    // --- Registry off: every instrumented site is one cold branch. ---
    let mut off_secs = f64::INFINITY;
    let mut baseline = None;
    for _ in 0..PASSES {
        let start = Instant::now();
        let evaluation = assertsolver::evaluate_model(&model, &entries, &config);
        off_secs = off_secs.min(start.elapsed().as_secs_f64());
        baseline = Some(evaluation);
    }
    let baseline = baseline.expect("at least one off pass");
    println!("{:>6} {:>12.3} {:>10} {:>14}", "off", off_secs, 0, "1.00");
    writer.emit(format!(
        "{{\"bench\":\"telemetry\",\"mode\":\"off\",\"cases\":{},\"samples\":{},\"secs\":{off_secs:.6}}}",
        entries.len(),
        config.samples
    ));

    // --- Registry on: every latency histogram and stage timer records. ---
    let mut on_secs = f64::INFINITY;
    let mut series = 0usize;
    for _ in 0..PASSES {
        let telemetry = TelemetryHandle::new(Arc::new(MetricsRegistry::default()));
        let start = Instant::now();
        let evaluation = evaluate_model_instrumented(&model, &entries, &config, &telemetry);
        on_secs = on_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(
            baseline, evaluation,
            "instrumented evaluation must be byte-identical to the plain one"
        );
        let snapshot = telemetry.snapshot();
        series = snapshot.len();
        assert!(
            snapshot.get("eval.stage.sessions").map(|m| m.count) >= Some(1),
            "instrumented run must record stage timings"
        );
        assert!(
            snapshot
                .get("service.repair.solve")
                .map(|m| m.count > 0)
                .unwrap_or(false),
            "instrumented run must record solve latency"
        );
        black_box(&snapshot);
    }
    let overhead = on_secs / off_secs;
    let overhead_pct = (overhead - 1.0) * 100.0;
    println!(
        "{:>6} {:>12.3} {:>10} {:>13.2}x",
        "on", on_secs, series, overhead
    );
    writer.emit(format!(
        "{{\"bench\":\"telemetry\",\"mode\":\"on\",\"cases\":{},\"samples\":{},\"secs\":{on_secs:.6},\"series\":{series},\"overhead_pct\":{overhead_pct:.1}}}",
        entries.len(),
        config.samples
    ));

    // The acceptance budget: a live registry must cost < 5% wall-clock on the
    // quick protocol (plus an absolute floor so timer noise on a sub-second
    // run cannot flake the gate).
    assert!(
        on_secs <= off_secs * 1.05 + NOISE_FLOOR_SECS,
        "telemetry overhead {overhead_pct:.1}% exceeds the 5% budget \
         (off {off_secs:.3}s, on {on_secs:.3}s)"
    );
    writer.finish();
}
