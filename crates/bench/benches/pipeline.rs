//! Criterion bench: the three-stage data-augmentation pipeline.
use criterion::{criterion_group, criterion_main, Criterion};
use svdata::{run_pipeline, PipelineConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("tiny_pipeline_end_to_end", |b| {
        b.iter(|| run_pipeline(std::hint::black_box(&PipelineConfig::tiny(9))))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
