//! Cold vs warm evaluation wall-clock with persistent cache snapshots.
//!
//! The cold pass evaluates a mixed corpus against an empty `cache_dir`, paying for
//! every model sample and bounded-checker verdict and flushing both snapshots on
//! the way out.  Each warm pass then rebuilds the pools from scratch — nothing
//! shared in memory — and replays the same evaluation from the on-disk snapshots.
//! The two evaluations are asserted byte-identical before any number is reported.
//!
//! Besides the human-readable table, the run emits one machine-readable line per
//! mode — `BENCH_SUMMARY {...}` — so CI logs can be grepped into a trajectory:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"persist","mode":"cold","cases":10,...}
//! BENCH_SUMMARY {"bench":"persist","mode":"warm","cases":10,...,"speedup_vs_cold":9.31}
//! ```
//!
//! Run with `cargo bench --bench persist`.  (Warm speedup comes from skipping
//! recomputation, not from parallelism, so it shows up even on the 1-core CI
//! container — unlike the worker-scaling benches.)

use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::AssertSolverModel;

const WARM_PASSES: usize = 3;

fn corpus() -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(47));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(10);
    entries
}

fn main() {
    let dir =
        std::env::temp_dir().join(format!("assertsolver-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut writer = SummaryWriter::new("persist", 2);
    let entries = corpus();
    let model = AssertSolverModel::base(7);
    let config = assertsolver::EvalConfig {
        workers: 2,
        verify_workers: 2,
        cache_dir: Some(dir.display().to_string()),
        ..assertsolver::EvalConfig::quick(29)
    };

    println!(
        "persist: {} cases x {} samples, cold + {WARM_PASSES} warm passes (cache dir {})",
        entries.len(),
        config.samples,
        dir.display()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "mode", "wall (s)", "verdict hits", "speedup vs cold"
    );

    let cold_start = Instant::now();
    let cold = assertsolver::evaluate_model(&model, &entries, &config);
    let cold_secs = cold_start.elapsed().as_secs_f64();
    black_box(&cold);
    println!("{:>6} {:>12.3} {:>14} {:>16}", "cold", cold_secs, 0, "1.00");
    writer.emit(format!(
        "{{\"bench\":\"persist\",\"mode\":\"cold\",\"cases\":{},\"samples\":{},\"secs\":{:.6}}}",
        entries.len(),
        config.samples,
        cold_secs
    ));

    let mut best_warm = f64::INFINITY;
    let mut warm_hits = 0u64;
    for _ in 0..WARM_PASSES {
        // Fresh pools each pass: the only state carried over is the snapshot files.
        let warm_start = Instant::now();
        let verifier = assertsolver::EvalVerifier::start(&config);
        let warm = assertsolver::evaluate_model_with(&model, &entries, &config, &verifier);
        let secs = warm_start.elapsed().as_secs_f64();
        let metrics = verifier.shutdown();
        assert_eq!(cold, warm, "warm evaluation must be byte-identical to cold");
        assert!(
            metrics.warm_hits > 0,
            "warm pass must replay verdicts from the snapshot"
        );
        best_warm = best_warm.min(secs);
        warm_hits = metrics.warm_hits;
        black_box(&warm);
    }
    let speedup = cold_secs / best_warm;
    println!(
        "{:>6} {:>12.3} {:>14} {:>16.2}",
        "warm", best_warm, warm_hits, speedup
    );
    writer.emit(format!(
        "{{\"bench\":\"persist\",\"mode\":\"warm\",\"cases\":{},\"samples\":{},\"secs\":{:.6},\"verdict_warm_hits\":{},\"speedup_vs_cold\":{:.2}}}",
        entries.len(),
        config.samples,
        best_warm,
        warm_hits,
        speedup
    ));

    let _ = std::fs::remove_dir_all(&dir);
    writer.finish();
}
