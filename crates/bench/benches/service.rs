//! Criterion bench: repair-service throughput as the worker pool scales (1/2/4/8).
//!
//! Each measurement drives a fixed mixed workload through `svserve` end to end
//! (submit → shard queue → micro-batch → model → ticket), with the response cache
//! disabled-by-construction (every request distinct) so the numbers measure the
//! serving path rather than cache hits.

use criterion::{criterion_group, criterion_main, Criterion};
use svmodel::{AssertSolverModel, CaseInput};
use svserve::{serve_scoped, RepairRequest, ServiceConfig};

fn workload() -> Vec<RepairRequest> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(47));
    let cases: Vec<CaseInput> = pipeline
        .datasets
        .sva_bug
        .iter()
        .map(CaseInput::from_entry)
        .collect();
    assert!(!cases.is_empty());
    // Vary the temperature per request so every cache key is distinct and each
    // request costs a real model invocation.
    (0..64)
        .map(|i| {
            let case = cases[i % cases.len()].clone();
            RepairRequest::new(case, 4, 0.2 + (i as f64) * 1e-6)
        })
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let model = AssertSolverModel::base(1);
    let requests = workload();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(&format!("{workers}_workers_64_cases"), |b| {
            b.iter(|| {
                let outcomes = serve_scoped(
                    &model,
                    ServiceConfig::default().with_workers(workers),
                    |service| service.solve_all(std::hint::black_box(requests.clone())),
                );
                assert_eq!(outcomes.len(), requests.len());
                outcomes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
