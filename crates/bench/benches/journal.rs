//! Journaling overhead on the quick evaluation protocol: tracer off vs on.
//!
//! The same quick-protocol evaluation runs twice, best of `PASSES` passes each
//! way: once through `evaluate_model` with no journal directory resolved (the
//! tracer handle is off — the hot path pays one branch per hook), and once
//! through `evaluate_model_journaled` (every session records phase / timing /
//! verdict events into the sharded sink, which is then drained, sorted and
//! rendered).  The two evaluations are asserted byte-identical, and the
//! journaled wall-clock is asserted within the **5% overhead budget** the
//! observability layer promises.
//!
//! Two machine-readable `BENCH_SUMMARY {...}` lines feed the
//! `BENCH_journal.json` trajectory:
//!
//! ```text
//! BENCH_SUMMARY {"bench":"journal","mode":"off","cases":8,...}
//! BENCH_SUMMARY {"bench":"journal","mode":"on","cases":8,...,"overhead_pct":1.3}
//! ```
//!
//! Run with `cargo bench --bench journal`.

use assertsolver::{evaluate_model_journaled, EvalConfig, JournalManifest};
use assertsolver_bench::SummaryWriter;
use criterion::black_box;
use std::time::Instant;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};

const PASSES: usize = 3;

/// Absolute slack (seconds) on top of the 5% budget: at quick-protocol scale a
/// single scheduler hiccup is bigger than 5% of the run, and the budget is
/// about asymptotic overhead, not timer noise.
const NOISE_FLOOR_SECS: f64 = 0.25;

fn corpus() -> Vec<SvaBugEntry> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(31));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(assertsolver::human_crafted_cases());
    entries.truncate(8);
    entries
}

fn main() {
    let mut writer = SummaryWriter::new("journal", 2);
    let entries = corpus();
    let model = AssertSolverModel::base(9);
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(37)
    };
    println!(
        "journal: {} cases x {} samples, tracer off vs on, best of {PASSES} passes",
        entries.len(),
        config.samples
    );
    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "mode", "wall (s)", "events", "overhead"
    );

    // --- Tracer off: no journal dir resolves, every hook is one cold branch. ---
    assert!(
        config.resolved_journal_dir().is_none(),
        "unset ASSERTSOLVER_JOURNAL_DIR before running the overhead bench"
    );
    let mut off_secs = f64::INFINITY;
    let mut baseline = None;
    for _ in 0..PASSES {
        let start = Instant::now();
        let evaluation = assertsolver::evaluate_model(&model, &entries, &config);
        off_secs = off_secs.min(start.elapsed().as_secs_f64());
        baseline = Some(evaluation);
    }
    let baseline = baseline.expect("at least one off pass");
    println!("{:>6} {:>12.3} {:>10} {:>14}", "off", off_secs, 0, "1.00");
    writer.emit(format!(
        "{{\"bench\":\"journal\",\"mode\":\"off\",\"cases\":{},\"samples\":{},\"secs\":{off_secs:.6}}}",
        entries.len(),
        config.samples
    ));

    // --- Tracer on: full session journal recorded, drained and rendered. ---
    let manifest = JournalManifest::for_protocol("", "", &model.identity(), &entries, &config);
    let mut on_secs = f64::INFINITY;
    let mut events = 0usize;
    for _ in 0..PASSES {
        let start = Instant::now();
        let (evaluation, rendered) = evaluate_model_journaled(&model, &entries, &config, &manifest);
        on_secs = on_secs.min(start.elapsed().as_secs_f64());
        assert_eq!(
            baseline, evaluation,
            "journaled evaluation must be byte-identical to the untraced one"
        );
        events = rendered.lines().count().saturating_sub(2);
        assert!(events > 0, "journaled run must record session events");
        black_box(&rendered);
    }
    let overhead = on_secs / off_secs;
    let overhead_pct = (overhead - 1.0) * 100.0;
    println!(
        "{:>6} {:>12.3} {:>10} {:>13.2}x",
        "on", on_secs, events, overhead
    );
    writer.emit(format!(
        "{{\"bench\":\"journal\",\"mode\":\"on\",\"cases\":{},\"samples\":{},\"secs\":{on_secs:.6},\"events\":{events},\"overhead_pct\":{overhead_pct:.1}}}",
        entries.len(),
        config.samples
    ));

    // The acceptance budget: journaling must cost < 5% wall-clock on the quick
    // protocol (plus an absolute floor so timer noise on a sub-second run
    // cannot flake the gate).
    assert!(
        on_secs <= off_secs * 1.05 + NOISE_FLOOR_SECS,
        "journaling overhead {overhead_pct:.1}% exceeds the 5% budget \
         (off {off_secs:.3}s, on {on_secs:.3}s)"
    );
    writer.finish();
}
