//! `svprof` — dual-clock stage profiler for the quick evaluation protocol.
//!
//! ```text
//! svprof [--seed N] [--limit N] [--profile-dir DIR] [--min-coverage PCT]
//! ```
//!
//! Runs the quick protocol over the human-crafted corpus with the telemetry
//! plane's stage timers on (`eval.stage.setup` / `.sessions` / `.report`),
//! prints the collapsed-stack profile to stdout (flamegraph.pl's input
//! format: `stack value` per line), and reports on stderr how much of the
//! measured wall-clock the named stages attribute.  The stage timers tile
//! the evaluation contiguously, so attribution answers "which stage
//! dominates" directly — `evaluate;sessions` is where `ASSERTSOLVER_SCALE`
//! buys parallelism; `setup`/`report` are the serial floor.
//!
//! With `--profile-dir` (or `ASSERTSOLVER_PROFILE_DIR`) the same profile is
//! also written as a content-keyed `.folded` artifact.  With
//! `--min-coverage PCT` the exit status asserts attribution: below the bar
//! exits 1, so CI can pin "≥95% of wall-clock is named".
//!
//! Exit status: 0 ok, 1 below coverage bar or runtime failure, 2 usage.

use assertsolver::{evaluate_model_profiled, human_crafted_cases, EvalConfig};
use std::process::ExitCode;
use std::time::Instant;
use svmodel::AssertSolverModel;
use svserve::CollapsedProfile;

struct Args {
    seed: u64,
    limit: usize,
    profile_dir: Option<String>,
    min_coverage: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2025,
        limit: usize::MAX,
        profile_dir: None,
        min_coverage: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|err| format!("--seed: {err}"))?
            }
            "--limit" => {
                args.limit = value("--limit")?
                    .parse()
                    .map_err(|err| format!("--limit: {err}"))?
            }
            "--profile-dir" => args.profile_dir = Some(value("--profile-dir")?),
            "--min-coverage" => {
                args.min_coverage = Some(
                    value("--min-coverage")?
                        .parse()
                        .map_err(|err| format!("--min-coverage: {err}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("svprof: {msg}");
            eprintln!(
                "usage: svprof [--seed N] [--limit N] [--profile-dir DIR] [--min-coverage PCT]"
            );
            return ExitCode::from(2);
        }
    };

    let mut entries = human_crafted_cases();
    entries.truncate(args.limit);
    if entries.is_empty() {
        eprintln!("svprof: empty corpus (--limit 0?)");
        return ExitCode::FAILURE;
    }
    let model = AssertSolverModel::base(args.seed);
    let config = EvalConfig {
        profile_dir: args.profile_dir.clone(),
        ..EvalConfig::quick(args.seed)
    };

    let wall_start = Instant::now();
    let (evaluation, profile) = evaluate_model_profiled(&model, &entries, &config);
    let wall = wall_start.elapsed();

    // The rendered profile must round-trip through the parser — the same
    // contract CI leans on before feeding it to flamegraph tooling.
    let rendered = profile.render();
    let reparsed = match CollapsedProfile::parse(&rendered) {
        Ok(reparsed) => reparsed,
        Err(err) => {
            eprintln!("svprof: rendered profile does not re-parse: {err}");
            return ExitCode::FAILURE;
        }
    };
    if reparsed.total() != profile.total() {
        eprintln!("svprof: profile render/parse round-trip lost observations");
        return ExitCode::FAILURE;
    }

    print!("{rendered}");

    let wall_nanos = wall.as_nanos().max(1) as f64;
    let coverage = 100.0 * profile.total() as f64 / wall_nanos;
    eprintln!(
        "svprof: {} cases, pass@1 {:.1}%, wall {:.3}s, {:.1}% attributed to {} stages",
        entries.len(),
        evaluation.passk().pass1_percent(),
        wall.as_secs_f64(),
        coverage,
        profile.frames().count(),
    );
    if let Some(bar) = args.min_coverage {
        if coverage < bar {
            eprintln!("svprof: attribution {coverage:.1}% is below the {bar:.1}% bar");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
