//! `svtrace` — render the distributed causal trace tree of an evaluation.
//!
//! ```text
//! svtrace [--seed N] [--limit N] [--sockets a.sock,b.sock] [--timeout-ms N]
//!         [--deterministic] [--flame] [--slowest N] [--min-coverage PCT]
//!         [--out PATH]
//! ```
//!
//! Runs the quick protocol over the human-crafted corpus with the trace
//! plane on and prints the reconstructed trace forest: one tree per repair
//! session, `session` at the root, `submit`/`sample`/`verify`/`evaluate`
//! (and `rung.N` under a router) below it, each line carrying the span's
//! logical start tick, content-derived units and wall-clock nanoseconds.
//! With `--sockets` the same evaluation runs against a live `shard-serve`
//! fleet instead: the shard-side `sample` spans travel back in `TraceReply`
//! frames and merge into the driver's tree, so the printed forest is the
//! full cross-process reconstruction — byte-identical (in its
//! `--deterministic` projection) to the in-process run.
//!
//! * `--deterministic` prints only the content-derived fields (the
//!   byte-comparison projection; wall clocks omitted).
//! * `--flame` prints collapsed stacks (`session;verify 1234` per line) —
//!   the format `svprof`, `flamegraph.pl` and `inferno` consume; the root
//!   frame carries the unattributed residual so totals tile.
//! * `--slowest N` prints the N slowest sessions by root wall-clock with
//!   their attribution coverage (how much of each session's wall the named
//!   child spans explain).
//! * `--min-coverage PCT` exits 1 unless every listed session attributes at
//!   least PCT% of its wall-clock to named spans (CI pins 95).
//! * `--out PATH` additionally writes the forest as JSONL (the same artifact
//!   form `ASSERTSOLVER_TRACE=1` evaluations drop in the profile dir).
//!
//! Exit status: 0 ok, 1 below the coverage bar or runtime failure, 2 usage.

use assertsolver::{
    evaluate_model_observed, evaluate_model_over_fleet_traced, human_crafted_cases, EvalConfig,
    EvalVerifier,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{ShardFleet, TelemetryHandle, TraceForest, TraceHandle, TracerHandle};

struct Args {
    seed: u64,
    limit: usize,
    sockets: Vec<String>,
    timeout_ms: u64,
    deterministic: bool,
    flame: bool,
    slowest: Option<usize>,
    min_coverage: Option<f64>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2025,
        limit: usize::MAX,
        sockets: Vec::new(),
        timeout_ms: 5_000,
        deterministic: false,
        flame: false,
        slowest: None,
        min_coverage: None,
        out: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|err| format!("--seed: {err}"))?
            }
            "--limit" => {
                args.limit = value("--limit")?
                    .parse()
                    .map_err(|err| format!("--limit: {err}"))?
            }
            "--sockets" => args.sockets.extend(
                value("--sockets")?
                    .split(',')
                    .map(str::trim)
                    .filter(|socket| !socket.is_empty())
                    .map(str::to_string),
            ),
            "--timeout-ms" => {
                args.timeout_ms = value("--timeout-ms")?
                    .parse()
                    .map_err(|err| format!("--timeout-ms: {err}"))?
            }
            "--deterministic" => args.deterministic = true,
            "--flame" => args.flame = true,
            "--slowest" => {
                args.slowest = Some(
                    value("--slowest")?
                        .parse()
                        .map_err(|err| format!("--slowest: {err}"))?,
                )
            }
            "--min-coverage" => {
                args.min_coverage = Some(
                    value("--min-coverage")?
                        .parse()
                        .map_err(|err| format!("--min-coverage: {err}"))?,
                )
            }
            "--out" => args.out = Some(value("--out")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("svtrace: {msg}");
            eprintln!(
                "usage: svtrace [--seed N] [--limit N] [--sockets a.sock,b.sock] \
                 [--timeout-ms N] [--deterministic] [--flame] [--slowest N] \
                 [--min-coverage PCT] [--out PATH]"
            );
            return ExitCode::from(2);
        }
    };

    let mut entries = human_crafted_cases();
    entries.truncate(args.limit);
    if entries.is_empty() {
        eprintln!("svtrace: empty corpus (--limit 0?)");
        return ExitCode::FAILURE;
    }
    let model = AssertSolverModel::base(args.seed);
    let config = EvalConfig::quick(args.seed);
    // Salt 0: the salt keys multi-tenant separation, not privacy; a fixed
    // salt keeps `svtrace` output comparable across invocations and against
    // the `ASSERTSOLVER_TRACE=1` artifact of the same corpus.
    let trace = TraceHandle::new(0);

    let wall_start = Instant::now();
    let evaluation = if args.sockets.is_empty() {
        evaluate_model_observed(
            &model,
            &entries,
            &config,
            &EvalVerifier::start(&config),
            &TracerHandle::off(),
            &TelemetryHandle::off(),
            &trace,
        )
    } else {
        let fleet = ShardFleet::connect_unix(
            &args.sockets,
            Some(&model.identity()),
            Duration::from_millis(args.timeout_ms.max(1)),
        );
        let verifier = EvalVerifier::start(&config);
        let evaluation =
            evaluate_model_over_fleet_traced(&model, &entries, &config, &fleet, &verifier, &trace);
        verifier.shutdown();
        if fleet.metrics().wire_errors > 0 {
            eprintln!(
                "svtrace: {} wire errors against the fleet — trace is partial",
                fleet.metrics().wire_errors
            );
            return ExitCode::FAILURE;
        }
        evaluation
    };
    let wall = wall_start.elapsed();

    let forest = TraceForest::from_spans(trace.drain());
    if forest.is_empty() {
        eprintln!("svtrace: no spans collected");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &args.out {
        if let Err(err) = std::fs::write(path, forest.render_jsonl()) {
            eprintln!("svtrace: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }

    if args.flame {
        print!("{}", forest.collapsed().render());
    } else if let Some(n) = args.slowest {
        print!("{}", render_slowest(&forest, n));
    } else if args.deterministic {
        print!("{}", forest.render_deterministic());
    } else {
        print!("{}", forest.render());
    }

    eprintln!(
        "svtrace: {} cases, pass@1 {:.1}%, wall {:.3}s, {} spans in {} sessions",
        entries.len(),
        evaluation.passk().pass1_percent(),
        wall.as_secs_f64(),
        forest.len(),
        forest.sessions().len(),
    );

    if let Some(bar) = args.min_coverage {
        let listed = match args.slowest {
            Some(n) => forest.slowest(n),
            None => forest.sessions(),
        };
        for session in &listed {
            let coverage = 100.0 * session.coverage();
            if coverage < bar {
                eprintln!(
                    "svtrace: session {:016x} attributes only {coverage:.1}% \
                     of its wall-clock (bar {bar:.1}%)",
                    session.trace
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `--slowest` listing: rank, trace id, wall, attribution coverage and
/// the root's content-derived units.
fn render_slowest(forest: &TraceForest, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:>16}  {:>12}  {:>10}  {:>9}  {:>6}\n",
        "rank", "trace", "wall_ns", "attrib_ns", "coverage", "units"
    ));
    for (rank, session) in forest.slowest(n).iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:016x}  {:>12}  {:>10}  {:>8.1}%  {:>6}\n",
            rank + 1,
            session.trace,
            session.wall_ns,
            session.attributed_ns,
            100.0 * session.coverage(),
            session.units,
        ));
    }
    out
}
