//! Regenerates every table and figure of the AssertSolver paper in one run.
use assertsolver_bench::{ExperimentSuite, Scale};

fn main() {
    let suite = ExperimentSuite::new(Scale::from_env(), 2025);
    println!("{}", suite.all());
}
