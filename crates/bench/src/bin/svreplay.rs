//! `svreplay` — record and re-drive byte-deterministic session journals.
//!
//! `record` runs a quick-protocol evaluation with journaling on and writes the
//! rendered journal (header manifest, sorted deterministic events, the
//! serialized `ModelEvaluation` payload, checksummed footer) to disk.  The
//! manifest carries *rebuild tags* — recipes for reconstructing the exact
//! model and corpus — plus content fingerprints pinning them.
//!
//! `replay` parses a recorded journal, rebuilds the model/corpus/protocol from
//! the manifest (refusing on any fingerprint mismatch), re-drives the whole
//! evaluation through the engine, and asserts the re-rendered journal is
//! **byte-identical** to the file — which also proves the embedded
//! `ModelEvaluation` payload matched.  Exit status is the verdict, so CI can
//! chain `svreplay record && svreplay replay`.
//!
//! Journal bytes are a pure function of `(model, corpus, protocol)`: the
//! replay passes at any `ASSERTSOLVER_DRIVERS` / worker count and with warm or
//! cold caches.

use assertsolver::{
    corpus_fingerprint, evaluate_model_journaled, human_crafted_cases, EvalConfig, JournalManifest,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{parse_journal, write_journal};

const USAGE: &str = "usage:
  svreplay record --out <path> [--seed <n>] [--limit <n>]
  svreplay replay <path>";

fn build_corpus(pipeline_seed: u64, limit: usize) -> Vec<SvaBugEntry> {
    // The same mixed corpus the determinism tests sweep: machine-generated
    // pipeline cases plus the human-crafted set, truncated.
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(pipeline_seed));
    let mut entries = pipeline.datasets.sva_bug;
    entries.extend(human_crafted_cases());
    entries.truncate(limit);
    entries
}

fn model_tag(seed: u64) -> String {
    format!("base:{seed}")
}

fn corpus_tag(pipeline_seed: u64, limit: usize) -> String {
    format!("tiny:{pipeline_seed}+human:{limit}")
}

fn model_from_tag(tag: &str) -> Result<AssertSolverModel, String> {
    let seed = tag
        .strip_prefix("base:")
        .and_then(|raw| raw.parse::<u64>().ok())
        .ok_or_else(|| format!("unknown model tag {tag:?} (expected base:<seed>)"))?;
    Ok(AssertSolverModel::base(seed))
}

fn corpus_from_tag(tag: &str) -> Result<Vec<SvaBugEntry>, String> {
    let err = || format!("unknown corpus tag {tag:?} (expected tiny:<seed>+human:<limit>)");
    let rest = tag.strip_prefix("tiny:").ok_or_else(err)?;
    let (seed, limit) = rest.split_once("+human:").ok_or_else(err)?;
    let seed = seed.parse::<u64>().map_err(|_| err())?;
    let limit = limit.parse::<usize>().map_err(|_| err())?;
    Ok(build_corpus(seed, limit))
}

/// The evaluation protocol a manifest describes: the quick protocol's bounded
/// check with the manifest's sampling knobs.  Worker/driver counts stay at the
/// environment-resolved defaults — they must not change journal bytes.
fn config_from_manifest(manifest: &JournalManifest) -> EvalConfig {
    EvalConfig {
        samples: manifest.samples as usize,
        temperature: manifest.temperature_milli as f64 / 1000.0,
        ..EvalConfig::quick(manifest.seed)
    }
}

fn record(out: &Path, seed: u64, limit: usize) -> Result<(), String> {
    let pipeline_seed = 31;
    let entries = build_corpus(pipeline_seed, limit);
    if entries.is_empty() {
        return Err("empty corpus".to_string());
    }
    let model = AssertSolverModel::base(seed);
    let config = EvalConfig::quick(seed);
    let manifest = JournalManifest::for_protocol(
        &model_tag(seed),
        &corpus_tag(pipeline_seed, limit),
        &model.identity(),
        &entries,
        &config,
    );
    let (evaluation, rendered) = evaluate_model_journaled(&model, &entries, &config, &manifest);
    write_journal(out, &rendered)
        .map_err(|err| format!("cannot write {}: {err}", out.display()))?;
    println!(
        "svreplay: recorded {} cases ({} bytes, pass@1 {:.1}%) -> {}",
        entries.len(),
        rendered.len(),
        evaluation.passk().pass1_percent(),
        out.display()
    );
    Ok(())
}

fn replay(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    let parsed = parse_journal(&text)?;
    let manifest = JournalManifest::parse(&parsed.header.manifest)?;
    if manifest.model_tag.is_empty() || manifest.corpus_tag.is_empty() {
        return Err(
            "record-only journal (empty rebuild tags); record one with `svreplay record`"
                .to_string(),
        );
    }

    let model = model_from_tag(&manifest.model_tag)?;
    if model.identity() != manifest.model {
        return Err(format!(
            "model {:?} rebuilt from tag {:?} does not match journaled identity {:?}",
            model.identity(),
            manifest.model_tag,
            manifest.model
        ));
    }
    let entries = corpus_from_tag(&manifest.corpus_tag)?;
    let corpus_fnv = format!("{:016x}", corpus_fingerprint(&entries));
    if corpus_fnv != manifest.corpus_fnv {
        return Err(format!(
            "corpus fingerprint {corpus_fnv} rebuilt from tag {:?} does not match journaled {}",
            manifest.corpus_tag, manifest.corpus_fnv
        ));
    }
    let config = config_from_manifest(&manifest);
    let rebuilt = JournalManifest::for_protocol(
        &manifest.model_tag,
        &manifest.corpus_tag,
        &model.identity(),
        &entries,
        &config,
    );
    if rebuilt != manifest {
        return Err(format!(
            "rebuilt manifest differs from journaled one (protocol drift?)\n  journal: {}\n  rebuilt: {}",
            manifest.render(),
            rebuilt.render()
        ));
    }

    let (_, rendered) = evaluate_model_journaled(&model, &entries, &config, &manifest);
    if rendered != text {
        let diverged = rendered
            .lines()
            .zip(text.lines())
            .position(|(a, b)| a != b)
            .map(|idx| idx + 1)
            .unwrap_or_else(|| rendered.lines().count().min(text.lines().count()) + 1);
        return Err(format!(
            "replay diverged: re-driven journal is not byte-identical to {} (first difference on line {diverged})",
            path.display()
        ));
    }
    println!(
        "svreplay: replayed {} ({} events, {} bytes) byte-identical",
        path.display(),
        parsed.footer.events,
        text.len()
    );
    Ok(())
}

fn parse_u64(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    args.next()
        .and_then(|raw| raw.parse::<u64>().ok())
        .ok_or_else(|| format!("{flag} needs an unsigned integer"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = argv.iter();
    match args.next().map(String::as_str) {
        Some("record") => {
            let mut out: Option<PathBuf> = None;
            let mut seed = 9u64;
            let mut limit = 6usize;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--out" => out = args.next().map(PathBuf::from),
                    "--seed" => seed = parse_u64(&mut args, "--seed")?,
                    "--limit" => limit = parse_u64(&mut args, "--limit")? as usize,
                    other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
                }
            }
            let out = out.ok_or_else(|| format!("record needs --out <path>\n{USAGE}"))?;
            record(&out, seed, limit)
        }
        Some("replay") => {
            let path = args
                .next()
                .ok_or_else(|| format!("replay needs a journal path\n{USAGE}"))?;
            replay(Path::new(path))
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("svreplay: {message}");
            ExitCode::FAILURE
        }
    }
}
