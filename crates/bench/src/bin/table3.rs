//! Regenerates Table3 of the AssertSolver paper.
use assertsolver_bench::{ExperimentSuite, Scale};

fn main() {
    let suite = ExperimentSuite::new(Scale::from_env(), 2025);
    println!("{}", suite.table3());
}
