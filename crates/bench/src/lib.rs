//! Experiment harness regenerating every table and figure of the AssertSolver paper.
//!
//! The binaries in `src/bin/` (`table1` … `fig5`, `all_experiments`) are thin wrappers
//! around [`ExperimentSuite`]: the suite trains the three model checkpoints (base,
//! SFT, AssertSolver), instantiates the six baseline surrogates, evaluates everything
//! on SVA-Eval and formats the results in the paper's table layouts.
//!
//! Scale is controlled with the `ASSERTSOLVER_SCALE` environment variable: `quick`
//! (default, minutes on a laptop) or `full` (larger corpus and n = 20 samples per
//! case, closer to the paper's protocol).

use assertsolver::{
    evaluate_model, render_breakdown, render_distribution, render_histogram, render_passk_table,
    render_split_table, train, EvalConfig, ModelEvaluation, PassK, TrainConfig, TrainedArtifacts,
};
use svdata::distribution;
use svmodel::{all_baselines, RepairModel};

/// Collects the machine-readable `BENCH_SUMMARY {...}` lines a bench binary
/// emits, then **asserts the expected count in the binary itself** and writes
/// the lines to a `BENCH_<name>.json` perf-trajectory file at the repo root.
///
/// Before this, only CI grepped the bench logs for the summary-line count, so
/// a local `cargo bench` could silently emit the wrong shape.  `finish()`
/// makes the binary its own gate: a missing or extra summary line exits
/// non-zero with a loud message wherever the bench runs.
pub struct SummaryWriter {
    bench: &'static str,
    expected: usize,
    lines: Vec<String>,
}

impl SummaryWriter {
    /// A writer for the named bench that must emit exactly `expected` lines.
    pub fn new(bench: &'static str, expected: usize) -> Self {
        Self {
            bench,
            expected,
            lines: Vec::new(),
        }
    }

    /// Prints `BENCH_SUMMARY <json>` (the greppable trajectory line) and
    /// records the JSON object for the trajectory file.
    pub fn emit(&mut self, json: String) {
        println!("BENCH_SUMMARY {json}");
        self.lines.push(json);
    }

    /// The trajectory-file contents: one JSON object per summary line, wrapped
    /// so the file is itself valid JSON.
    pub fn render(&self) -> String {
        let mut out = format!("{{\"bench\":{:?},\"summaries\":[\n", self.bench);
        for (idx, line) in self.lines.iter().enumerate() {
            out.push_str(line);
            out.push_str(if idx + 1 < self.lines.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// Asserts the emitted-line count and writes `BENCH_<name>.json` at the
    /// repo root.  Exits non-zero on a count mismatch or an unwritable file —
    /// the bench binary is the gate, not a CI grep over its logs.
    pub fn finish(self) {
        if self.lines.len() != self.expected {
            eprintln!(
                "bench {}: emitted {} BENCH_SUMMARY lines, expected {}",
                self.bench,
                self.lines.len(),
                self.expected
            );
            std::process::exit(1);
        }
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.bench));
        if let Err(err) = std::fs::write(&path, self.render()) {
            eprintln!(
                "bench {}: cannot write {}: {err}",
                self.bench,
                path.display()
            );
            std::process::exit(1);
        }
        println!("bench {}: trajectory -> {}", self.bench, path.display());
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small corpus, 8 samples per case; finishes in a couple of minutes.
    Quick,
    /// Larger corpus, 20 samples per case (the paper's n).
    Full,
}

impl Scale {
    /// Reads the scale from `ASSERTSOLVER_SCALE` (`full` or `quick`, default quick).
    pub fn from_env() -> Self {
        Self::from_raw(std::env::var("ASSERTSOLVER_SCALE").ok().as_deref())
    }

    /// Parses a raw scale value (case-insensitive, whitespace-trimmed).
    ///
    /// Unknown values used to be silently swallowed as `Quick` — a typo like
    /// `ASSERTSOLVER_SCALE=ful` ran the wrong experiment with no trace.  They
    /// still fall back to `Quick` (the safe scale), but with a one-line
    /// warning naming the rejected value.
    pub fn from_raw(raw: Option<&str>) -> Self {
        match raw.map(str::trim) {
            None | Some("") => Scale::Quick,
            Some(value) if value.eq_ignore_ascii_case("full") => Scale::Full,
            Some(value) if value.eq_ignore_ascii_case("quick") => Scale::Quick,
            Some(value) => {
                eprintln!(
                    "warning: ASSERTSOLVER_SCALE={value:?} is not \"full\" or \"quick\"; using quick"
                );
                Scale::Quick
            }
        }
    }

    /// The training configuration for this scale.
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        match self {
            Scale::Quick => TrainConfig::quick(seed),
            Scale::Full => TrainConfig {
                pipeline: svdata::PipelineConfig {
                    corpus: svgen::CorpusConfig {
                        golden_designs: 96,
                        ..svgen::CorpusConfig::default()
                    },
                    bugs_per_design: 8,
                    ..svdata::PipelineConfig::default()
                },
                ..TrainConfig::default()
            },
        }
    }

    /// The evaluation configuration for this scale.
    pub fn eval_config(&self, seed: u64) -> EvalConfig {
        match self {
            Scale::Quick => EvalConfig::quick(seed),
            Scale::Full => EvalConfig {
                seed,
                ..EvalConfig::default()
            },
        }
    }
}

/// One evaluated model: display name plus its evaluation on the full benchmark.
#[derive(Debug, Clone)]
pub struct EvaluatedModel {
    /// Display name used in tables.
    pub name: String,
    /// Evaluation over machine + human cases.
    pub evaluation: ModelEvaluation,
}

impl EvaluatedModel {
    /// pass@k over all cases.
    pub fn overall(&self) -> PassK {
        self.evaluation.passk()
    }

    /// pass@k over machine (`false`) or human (`true`) cases only.
    pub fn subset(&self, human: bool) -> PassK {
        self.evaluation.passk_subset(human)
    }
}

/// The shared experiment state: one training run plus evaluations of every model.
pub struct ExperimentSuite {
    /// Training artifacts (datasets, split, checkpoints, benchmark).
    pub artifacts: TrainedArtifacts,
    /// Evaluation protocol used.
    pub eval_config: EvalConfig,
    /// Base / SFT / AssertSolver evaluations (paper Table III).
    pub checkpoints: Vec<EvaluatedModel>,
    /// Baseline surrogate evaluations (paper Table IV).
    pub baselines: Vec<EvaluatedModel>,
    /// Number of samples per case used in the evaluation.
    pub samples: usize,
}

impl ExperimentSuite {
    /// Trains and evaluates everything at the given scale.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let artifacts = train(&scale.train_config(seed));
        let eval_config = scale.eval_config(seed ^ 0xE7);
        let benchmark = artifacts.sva_eval.all();

        let mut checkpoints = Vec::new();
        for model in [&artifacts.base, &artifacts.sft, &artifacts.assert_solver] {
            checkpoints.push(EvaluatedModel {
                name: model.name().to_string(),
                evaluation: evaluate_model(model, &benchmark, &eval_config),
            });
        }
        let mut baselines = Vec::new();
        for baseline in all_baselines() {
            baselines.push(EvaluatedModel {
                name: baseline.name().to_string(),
                evaluation: evaluate_model(&baseline, &benchmark, &eval_config),
            });
        }
        let samples = eval_config.samples;
        Self {
            artifacts,
            eval_config,
            checkpoints,
            baselines,
            samples,
        }
    }

    fn checkpoint(&self, name_contains: &str) -> &EvaluatedModel {
        self.checkpoints
            .iter()
            .find(|m| m.name.contains(name_contains))
            .expect("checkpoint evaluated")
    }

    /// Table I: the bug taxonomy (static content from the paper).
    pub fn table1(&self) -> String {
        let mut out =
            String::from("Table I: Bug types leading to assertion failures and examples\n");
        out.push_str(&format!(
            "{:<10} {:<62} {:<28} {:<28} {:<20}\n",
            "Type", "Description", "Expected form", "Unexpected form", "Assertion"
        ));
        for row in svmutate::table1_rows() {
            out.push_str(&format!(
                "{:<10} {:<62} {:<28} {:<28} {:<20}\n",
                row.label,
                row.description,
                row.expected,
                row.unexpected,
                row.assertion.unwrap_or("-")
            ));
        }
        out
    }

    /// Table II: distribution of SVA-Bug (train) and SVA-Eval across length bins and
    /// bug types.
    pub fn table2(&self) -> String {
        let train_dist = distribution(&self.artifacts.split.train);
        let eval_dist = distribution(&self.artifacts.sva_eval.all());
        render_distribution(
            "Table II: Distribution of SVA-Bug and SVA-Eval across code length intervals and bug types",
            &[("SVA-Bug", train_dist), ("SVA-Eval", eval_dist)],
        )
    }

    /// Table III: base vs SFT vs AssertSolver pass@k.
    pub fn table3(&self) -> String {
        let rows: Vec<(String, PassK)> = self
            .checkpoints
            .iter()
            .map(|m| (m.name.clone(), m.overall()))
            .collect();
        render_passk_table("Table III: Model performance as pass@k", &rows)
    }

    /// Table IV: AssertSolver vs the baseline surrogates, split by benchmark part.
    pub fn table4(&self) -> String {
        let mut rows: Vec<(String, PassK, PassK, PassK)> = Vec::new();
        for model in self.baselines.iter().chain(self.checkpoints.last()) {
            rows.push((
                model.name.clone(),
                model.subset(false),
                model.subset(true),
                model.overall(),
            ));
        }
        render_split_table(
            "Table IV: Performance comparison between AssertSolver and other models (baseline surrogates)",
            &rows,
        )
    }

    /// Figure 3: histogram of correct answers across the sampled responses.
    pub fn fig3(&self) -> String {
        let sft = self.checkpoint("SFT");
        let solver = self.checkpoint("AssertSolver");
        render_histogram(
            "Fig. 3: Histogram of correct answers across sampled responses (x-axis: c)",
            &[
                (&sft.name, &sft.evaluation),
                (&solver.name, &solver.evaluation),
            ],
            self.samples,
        )
    }

    /// Figure 4: AssertSolver vs the strongest closed-source surrogates per bug type
    /// and code length.
    pub fn fig4(&self) -> String {
        let solver = self.checkpoint("AssertSolver");
        let strong: Vec<(&str, &ModelEvaluation)> = self
            .baselines
            .iter()
            .filter(|b| {
                b.name.contains("GPT-4") || b.name.contains("Claude") || b.name.contains("o1")
            })
            .map(|b| (b.name.as_str(), &b.evaluation))
            .chain(std::iter::once((solver.name.as_str(), &solver.evaluation)))
            .collect();
        let mut out = render_breakdown(
            "Fig. 4a/4b: Comparison with closed-source surrogate models",
            &strong,
            "pass@1",
            |p| p.pass1,
        );
        out.push('\n');
        out.push_str(&render_breakdown(
            "Fig. 4a/4b (continued)",
            &strong,
            "pass@5",
            |p| p.pass5,
        ));
        out
    }

    /// Figure 5: SFT model vs AssertSolver per bug type and code length.
    pub fn fig5(&self) -> String {
        let sft = self.checkpoint("SFT");
        let solver = self.checkpoint("AssertSolver");
        let models: Vec<(&str, &ModelEvaluation)> = vec![
            (sft.name.as_str(), &sft.evaluation),
            (solver.name.as_str(), &solver.evaluation),
        ];
        let mut out = render_breakdown(
            "Fig. 5a: SFT model vs AssertSolver under different scenarios",
            &models,
            "pass@1",
            |p| p.pass1,
        );
        out.push('\n');
        out.push_str(&render_breakdown(
            "Fig. 5b: SFT model vs AssertSolver under different scenarios",
            &models,
            "pass@5",
            |p| p.pass5,
        ));
        out
    }

    /// All experiments concatenated (the `all_experiments` binary).
    pub fn all(&self) -> String {
        let mut out = String::new();
        for section in [
            self.table1(),
            self.table2(),
            self.table3(),
            self.table4(),
            self.fig3(),
            self.fig4(),
            self.fig5(),
        ] {
            out.push_str(&section);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_regenerates_every_artifact() {
        let suite = ExperimentSuite::new(Scale::Quick, 41);
        let table1 = suite.table1();
        assert!(table1.contains("Non_cond"));
        let table2 = suite.table2();
        assert!(table2.contains("SVA-Eval"));
        let table3 = suite.table3();
        assert!(table3.contains("AssertSolver"));
        let table4 = suite.table4();
        assert!(table4.contains("o1-preview (surrogate)"));
        assert!(suite.fig3().contains("Histogram"));
        assert!(suite.fig4().contains("Bug type"));
        assert!(suite.fig5().contains("SFT"));

        // Headline shape of Table III: trained checkpoints beat the base model.
        let base = suite.checkpoints[0].overall();
        let solver = suite.checkpoints[2].overall();
        assert!(solver.pass1 > base.pass1);
    }

    #[test]
    fn summary_writer_renders_valid_trajectory_json() {
        let mut writer = SummaryWriter::new("unit", 2);
        writer.emit("{\"bench\":\"unit\",\"mode\":\"a\",\"secs\":0.5}".to_string());
        writer.emit("{\"bench\":\"unit\",\"mode\":\"b\",\"secs\":0.25}".to_string());
        let rendered = writer.render();
        assert!(rendered.starts_with("{\"bench\":\"unit\",\"summaries\":[\n"));
        assert!(rendered.contains("\"mode\":\"a\""));
        assert!(rendered.trim_end().ends_with("]}"));
        // Two objects, comma-separated: exactly one trailing-comma line.
        assert_eq!(rendered.matches("},\n").count(), 1);
    }

    #[test]
    fn scale_from_env_defaults_to_quick() {
        std::env::remove_var("ASSERTSOLVER_SCALE");
        assert_eq!(Scale::from_env(), Scale::Quick);
    }

    #[test]
    fn scale_parsing_is_case_insensitive_and_trims() {
        // Regression: only the exact strings "full"/"FULL" selected the full
        // scale; "Full" or " full " silently ran the quick experiments.
        assert_eq!(Scale::from_raw(Some("Full")), Scale::Full);
        assert_eq!(Scale::from_raw(Some(" full ")), Scale::Full);
        assert_eq!(Scale::from_raw(Some("QUICK")), Scale::Quick);
        assert_eq!(Scale::from_raw(Some("ful")), Scale::Quick);
        assert_eq!(Scale::from_raw(Some("")), Scale::Quick);
        assert_eq!(Scale::from_raw(None), Scale::Quick);
    }
}
