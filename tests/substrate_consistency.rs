//! Property-style consistency checks across the substrate crates: every injected bug
//! produced by the pipeline must (a) differ from its golden source in exactly one
//! line, (b) carry logs naming an assertion that really exists in the design, and
//! (c) be repaired by its own golden fix.

use assertsolver::apply_line_edit;
use svdata::{run_pipeline, PipelineConfig};
use svverify::VerifyOracle;

#[test]
fn every_pipeline_case_is_internally_consistent() {
    let output = run_pipeline(&PipelineConfig::tiny(77));
    let oracle = VerifyOracle::default();
    assert!(!output.datasets.sva_bug.is_empty());
    for entry in output.datasets.sva_bug.iter().take(10) {
        // (a) exactly one differing line at the recorded location.
        let diffs = svmutate::diff_lines(&entry.golden_source, &entry.buggy_source);
        assert_eq!(diffs.len(), 1, "module {}", entry.module_name);
        assert_eq!(diffs[0].line, entry.bug_line_number);

        // (b) failing assertions exist in the buggy module.
        let module = svparse::parse_module(&entry.buggy_source).unwrap();
        let names: Vec<String> = module.assertions().map(|a| a.display_name()).collect();
        for failing in &entry.failing_assertions {
            assert!(names.contains(failing), "unknown assertion {failing}");
        }

        // (c) the golden fix repairs the design.
        let repaired_text = apply_line_edit(
            &entry.buggy_source,
            entry.bug_line_number,
            &entry.fixed_line,
        )
        .unwrap();
        let repaired = svparse::parse_module(&repaired_text).unwrap();
        assert!(
            oracle.repair_solves_failure(&repaired),
            "golden fix does not repair {}",
            entry.module_name
        );
    }
}
