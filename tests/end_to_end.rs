//! Cross-crate integration test: the full reproduction flow at quick scale.
//!
//! Checks the headline *shape* of the paper's results rather than absolute numbers:
//! the trained checkpoints must dominate the untrained base model, DPO must not lose
//! pass@1 relative to SFT, and every experiment artifact must be regenerable.

use assertsolver::{evaluate_model, train, EvalConfig, TrainConfig};

#[test]
fn training_recipe_reproduces_the_paper_shape() {
    let artifacts = train(&TrainConfig::quick(2025));
    assert!(!artifacts.split.train.is_empty());
    assert!(!artifacts.sva_eval.machine.is_empty());
    assert!(artifacts.sva_eval.human.len() >= 5);

    let benchmark = artifacts.sva_eval.all();
    let config = EvalConfig::quick(9);

    let base = evaluate_model(&artifacts.base, &benchmark, &config).passk();
    let sft = evaluate_model(&artifacts.sft, &benchmark, &config).passk();
    let solver = evaluate_model(&artifacts.assert_solver, &benchmark, &config).passk();

    // RQ1 shape: SFT and AssertSolver vastly outperform the base model.
    assert!(sft.pass1 > base.pass1 + 0.1, "sft {sft:?} vs base {base:?}");
    assert!(
        solver.pass1 > base.pass1 + 0.1,
        "solver {solver:?} vs base {base:?}"
    );
    // Learning from errors must not collapse precision (paper: pass@1 goes *up*).
    assert!(
        solver.pass1 + 0.15 >= sft.pass1,
        "DPO lost too much pass@1: solver {solver:?} vs sft {sft:?}"
    );
    // pass@5 always dominates pass@1.
    for p in [base, sft, solver] {
        assert!(p.pass5 + 1e-9 >= p.pass1);
    }
}
