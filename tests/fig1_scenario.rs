//! The paper's Fig. 1 walkthrough as an executable scenario: golden passes, the
//! inverted-condition bug fails, the logs name the assertion, and the golden fix
//! repairs it under the bounded checker.

use assertsolver::{apply_line_edit, human_crafted_cases, response_is_correct};
use svmodel::Response;
use svverify::VerifyOracle;

#[test]
fn fig1_accumulator_round_trip() {
    let case = human_crafted_cases()
        .into_iter()
        .find(|c| c.module_name == "accu_human")
        .expect("Fig. 1 case present");

    // The logs point at the valid_out_check assertion.
    assert!(case.logs.contains("valid_out_check"));
    assert!(case.buggy_line.contains("!end_cnt"));

    // Applying the golden fix to the buggy source must restore a passing design.
    let repaired_text =
        apply_line_edit(&case.buggy_source, case.bug_line_number, &case.fixed_line).unwrap();
    let repaired = svparse::parse_module(&repaired_text).unwrap();
    let oracle = VerifyOracle::default();
    assert!(oracle.repair_solves_failure(&repaired));

    // And the evaluation harness agrees via the Response path.
    let golden_response = Response {
        bug_line_number: case.bug_line_number,
        buggy_line: case.buggy_line.clone(),
        fixed_line: case.fixed_line.clone(),
        cot: None,
    };
    assert!(response_is_correct(&case, &golden_response, &oracle));
}
