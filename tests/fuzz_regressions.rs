//! Tier-1 guard over the fuzzing subsystem and the defects it mined.
//!
//! Three layers of protection:
//!
//! * the parser defects found by `svfuzz` stay fixed (clean errors instead of
//!   stack-overflow aborts; spans that never point past the source);
//! * every corpus case checked in under `fuzz/corpus/` reproduces: the
//!   recorded oracle outcome matches and the embedded journal byte-verifies;
//! * the fuzzing loop itself is byte-deterministic and its mined cases flow
//!   into the data pipeline as ordinary corpus material.

use std::path::Path;
use svdata::stage1_filter;
use svfuzz::{mined_samples, repro_case, run_fuzz, FuzzConfig, OracleKind};
use svgen::{CorpusConfig, CorpusGenerator};

fn corpus_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fuzz/corpus"))
}

#[test]
fn deep_nesting_errors_cleanly_instead_of_overflowing() {
    // Both recursion paths that used to abort the process: grouped parens on
    // the expression ladder and stacked prefix operators.
    let mut rhs = String::from("a");
    for _ in 0..2000 {
        rhs = format!("({rhs})");
    }
    let paren = format!("module m(input wire a, output wire y);\n  assign y = {rhs};\nendmodule\n");
    let unary = format!(
        "module m(input wire a, output wire y);\n  assign y = {}a;\nendmodule\n",
        "~".repeat(2000)
    );
    for source in [paren, unary] {
        let err = svparse::parse_module(&source).expect_err("over-deep input must be rejected");
        assert!(
            err.to_string().contains("nesting deeper"),
            "expected a clean depth error, got: {err}"
        );
    }
}

#[test]
fn parser_error_spans_stay_within_the_source() {
    let malformed = [
        "module m();\n\n\n\nassign\n",
        "module m(input wire a;\n",
        "module m();\n  always @(posedge clk) begin\n",
        "module m();\n  assign y = ;\nendmodule\n\n\n",
        "module\n\n\n\n\n\n",
    ];
    for source in malformed {
        let err = svparse::parse_module(source).expect_err("malformed input must not parse");
        let lines = source.lines().count().max(1);
        assert!(
            (err.line() as usize) <= lines,
            "span out of range: line {} of {lines} for {source:?}",
            err.line()
        );
    }
}

#[test]
fn every_checked_in_corpus_case_reproduces() {
    let cases = svfuzz::load_corpus(corpus_root()).expect("corpus loads");
    assert!(
        !cases.is_empty(),
        "fuzz/corpus must hold the mined regression cases"
    );
    for (path, case) in &cases {
        repro_case(case).unwrap_or_else(|err| panic!("{} does not repro: {err}", path.display()));
        assert!(
            !case.journal.is_empty(),
            "{} carries no journal",
            path.display()
        );
    }
    // The parser regressions mined during development are among them.
    assert!(
        cases
            .iter()
            .filter(|(_, c)| c.oracle == OracleKind::ParserEnvelope)
            .count()
            >= 3
    );
}

#[test]
fn fuzz_runs_are_byte_deterministic() {
    let config = FuzzConfig::new(11, 96);
    let a = run_fuzz(&config);
    let b = run_fuzz(&config);
    assert_eq!(a.log, b.log, "finding log must be a pure function of seed");
    assert_eq!(a.cases, b.cases);
    let c = run_fuzz(&FuzzConfig::new(12, 96));
    assert_ne!(
        a.log, c.log,
        "different seeds must explore different inputs"
    );
}

#[test]
fn mined_cases_flow_into_the_data_pipeline() {
    let cases: Vec<_> = svfuzz::load_corpus(corpus_root())
        .expect("corpus loads")
        .into_iter()
        .map(|(_, case)| case)
        .collect();
    let mined = mined_samples(&cases);
    assert_eq!(mined.len(), cases.len());

    let generator = CorpusGenerator::new(CorpusConfig {
        golden_designs: 8,
        ..CorpusConfig::default()
    });
    let baseline = generator.generate().len();
    let corpus = generator.generate_with_mined(mined);
    assert_eq!(corpus.len(), baseline + cases.len());

    // Stage 1 digests the mined material without panicking; the malformed
    // parser regressions become verilog-pt entries with failure analysis —
    // negative examples for learning-from-errors — instead of vanishing.
    let stage1 = stage1_filter(&corpus);
    let with_failure = stage1
        .verilog_pt
        .iter()
        .filter(|e| e.failure_analysis.is_some())
        .count();
    assert!(
        with_failure >= cases.len().min(1),
        "mined malformed inputs must surface as failure-analysis entries"
    );
    assert!(!stage1.accepted.is_empty());
}
