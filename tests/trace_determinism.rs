//! Trace-tree byte-determinism: the deterministic projection of a trace
//! forest ([`TraceForest::render_deterministic`]) is a pure function of
//! (corpus, salt) — identical at any driver-thread count, any worker count,
//! over loopback or unix-socket fleets, warm or cold, and against a v2 peer
//! that predates the `SubmitTraced` exchange.
//!
//! Wall clocks are the *only* volatile span field, and they are excluded
//! from the projection, so these suites compare bytes, not structures — the
//! same bar the journal and deterministic-metrics planes hold.

use assertsolver::{
    evaluate_model_observed, evaluate_model_over_fleet_traced, EvalConfig, EvalVerifier,
};
use std::sync::Arc;
use std::time::Duration;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{
    read_frame, write_frame, Frame, RepairService, ServiceConfig, ShardFleet, ShardServer,
    TelemetryHandle, TraceForest, TraceHandle, TracerHandle, Transport, UnixTransport,
    MIN_WIRE_FORMAT_VERSION,
};

fn corpus() -> Vec<SvaBugEntry> {
    assertsolver::human_crafted_cases()
        .into_iter()
        .take(4)
        .collect()
}

/// One in-process evaluation with tracing on; returns the deterministic
/// projection of the collected forest.
fn traced_run(config: &EvalConfig) -> String {
    let model = AssertSolverModel::base(config.seed);
    let trace = TraceHandle::new(0);
    let verifier = EvalVerifier::start(config);
    evaluate_model_observed(
        &model,
        &corpus(),
        config,
        &verifier,
        &TracerHandle::off(),
        &TelemetryHandle::off(),
        &trace,
    );
    verifier.shutdown();
    TraceForest::from_spans(trace.drain()).render_deterministic()
}

#[test]
fn trace_tree_is_byte_identical_at_any_driver_count() {
    let reference = traced_run(&EvalConfig {
        drivers: 1,
        ..EvalConfig::quick(7)
    });
    assert!(!reference.is_empty(), "tracing collected spans");
    for drivers in [2, 4, 8] {
        let tree = traced_run(&EvalConfig {
            drivers,
            ..EvalConfig::quick(7)
        });
        assert_eq!(
            tree, reference,
            "trace tree at {drivers} drivers must match the single-driver bytes"
        );
    }
}

#[test]
fn trace_tree_is_byte_identical_at_any_worker_count() {
    let reference = traced_run(&EvalConfig {
        workers: 1,
        verify_workers: 1,
        ..EvalConfig::quick(11)
    });
    for workers in 2..=8 {
        let tree = traced_run(&EvalConfig {
            workers,
            verify_workers: 1 + workers % 3,
            ..EvalConfig::quick(11)
        });
        assert_eq!(
            tree, reference,
            "trace tree at {workers} workers must match the single-worker bytes"
        );
    }
}

/// Fleet runs — loopback (every frame round-trips the codec in process) and
/// a 2-shard unix-socket fleet — produce the same bytes as the in-process
/// evaluation, warm or cold.
#[test]
fn fleet_trace_trees_match_in_process_over_loopback_and_unix() {
    let seed = 13;
    let config = EvalConfig::quick(seed);
    let model = AssertSolverModel::base(seed);
    let reference = traced_run(&config);

    // Loopback: one in-process shard behind the codec.
    let service = Arc::new(RepairService::start(
        Arc::new(AssertSolverModel::base(seed)),
        ServiceConfig::default().with_seed(seed),
    ));
    let fleet = ShardFleet::new(vec![Box::new(svserve::LoopbackTransport::new(
        Arc::clone(&service),
        model.identity(),
    ))]);
    let trace = TraceHandle::new(0);
    let verifier = EvalVerifier::start(&config);
    evaluate_model_over_fleet_traced(&model, &corpus(), &config, &fleet, &verifier, &trace);
    verifier.shutdown();
    let loopback = TraceForest::from_spans(trace.drain()).render_deterministic();
    assert_eq!(loopback, reference, "loopback tree matches in-process");
    drop(fleet);
    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();

    // Unix: two shard servers on temp sockets, cold then warm.
    let dir = std::env::temp_dir().join(format!("trace-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let services: Vec<_> = (0..2)
        .map(|_| {
            Arc::new(RepairService::start(
                Arc::new(AssertSolverModel::base(seed)),
                ServiceConfig::default().with_seed(seed),
            ))
        })
        .collect();
    let sockets: Vec<_> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let servers: Vec<_> = services
        .iter()
        .zip(&sockets)
        .map(|(service, socket)| {
            ShardServer::bind(socket, Arc::clone(service), model.identity()).expect("bind")
        })
        .collect();
    let fleet =
        ShardFleet::connect_unix(&sockets, Some(&model.identity()), Duration::from_secs(10));
    for pass in ["cold", "warm"] {
        let trace = TraceHandle::new(0);
        let verifier = EvalVerifier::start(&config);
        evaluate_model_over_fleet_traced(&model, &corpus(), &config, &fleet, &verifier, &trace);
        verifier.shutdown();
        let unix = TraceForest::from_spans(trace.drain()).render_deterministic();
        assert_eq!(unix, reference, "{pass} unix fleet tree matches in-process");
    }
    assert_eq!(fleet.metrics().wire_errors, 0);
    drop(fleet);
    for server in servers {
        server.shutdown();
    }
    for service in services {
        Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A v2 peer — one that answers the hello with the minimum version and only
/// speaks plain `Submit` — still yields the identical deterministic tree:
/// `call_traced` falls back losslessly because every deterministic span field
/// is derived driver-side; only the shard's wall clock is lost.
#[test]
fn v2_peer_negotiates_down_and_loses_no_deterministic_bytes() {
    let dir = std::env::temp_dir().join(format!("trace-v2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("v2.sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).expect("bind");

    // The fake v2 shard: hello pinned at the floor version, then an echo of
    // canned outcomes for plain Submit frames; any v3-only frame would be a
    // parse error on its side, so receiving one fails the test by closing.
    let seed = 17;
    let service = Arc::new(RepairService::start(
        Arc::new(AssertSolverModel::base(seed)),
        ServiceConfig::default().with_seed(seed),
    ));
    let peer_service = Arc::clone(&service);
    let peer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(stream);
        match read_frame(&mut reader).expect("client hello") {
            Frame::Hello { .. } => write_frame(
                &mut writer,
                &Frame::Hello {
                    format_version: MIN_WIRE_FORMAT_VERSION,
                    fingerprint: "assertsolver".into(),
                },
            )
            .expect("reply hello"),
            other => panic!("expected hello, got {other:?}"),
        }
        loop {
            match read_frame(&mut reader) {
                Ok(Frame::Submit(request)) => {
                    let outcome = peer_service.submit(request).expect("open").wait();
                    write_frame(
                        &mut writer,
                        &Frame::Response(svserve::WireOutcome {
                            responses: outcome.responses.as_ref().clone(),
                            from_cache: outcome.from_cache,
                        }),
                    )
                    .expect("reply");
                }
                Ok(other) => panic!("v2 peer received a v3-only frame: {other:?}"),
                Err(_) => break, // client hung up
            }
        }
    });

    let mut transport = UnixTransport::connect(&socket, None, Duration::from_secs(10))
        .expect("negotiates down instead of refusing");
    assert_eq!(transport.negotiated_version(), MIN_WIRE_FORMAT_VERSION);

    let config = EvalConfig::quick(seed);
    let model = AssertSolverModel::base(seed);
    // Drive one traced exchange directly: the fallback path must answer and
    // return zero shard spans.
    let request = svserve::RepairRequest::new(
        svmodel::CaseInput::from_entry(&corpus()[0]),
        config.samples,
        config.temperature,
    );
    let ctx = svserve::TraceContext::root(request.key(), 0);
    let (outcome, spans) = transport
        .call_traced(&request, &ctx)
        .expect("fallback submit answers");
    assert_eq!(outcome.responses.len(), config.samples);
    assert!(spans.is_empty(), "a v2 peer contributes no shard spans");

    // And a full fleet evaluation over the v2 peer still reproduces the
    // in-process deterministic bytes (single shard ⇒ same placement).
    let reference = {
        let trace = TraceHandle::new(0);
        let verifier = EvalVerifier::start(&config);
        evaluate_model_observed(
            &model,
            &corpus(),
            &config,
            &verifier,
            &TracerHandle::off(),
            &TelemetryHandle::off(),
            &trace,
        );
        verifier.shutdown();
        TraceForest::from_spans(trace.drain()).render_deterministic()
    };
    let fleet = ShardFleet::new(vec![Box::new(transport) as Box<dyn Transport>]);
    let trace = TraceHandle::new(0);
    let verifier = EvalVerifier::start(&config);
    evaluate_model_over_fleet_traced(&model, &corpus(), &config, &fleet, &verifier, &trace);
    verifier.shutdown();
    assert_eq!(
        fleet.metrics().wire_errors,
        0,
        "no errors against the v2 peer"
    );
    let downlevel = TraceForest::from_spans(trace.drain()).render_deterministic();
    assert_eq!(
        downlevel, reference,
        "v2 fallback loses no deterministic trace bytes"
    );

    drop(fleet);
    peer.join().expect("peer thread");
    Arc::try_unwrap(service)
        .ok()
        .expect("sole owner")
        .shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
