//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset this workspace's benches use: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.  Each benchmark
//! runs a short warm-up, then timed samples, and prints mean / median / min wall time
//! per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's iterations.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes the batch so one sample costs roughly a millisecond.
        let warmup_start = Instant::now();
        black_box(routine());
        let single = warmup_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / single.as_nanos()).max(1);
        self.iters_per_sample = u64::try_from(per_sample).unwrap_or(u64::MAX).min(10_000);

        let budget = Duration::from_millis(300);
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX));
            if run_start.elapsed() > budget {
                break;
            }
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group sharing harness settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (formatting parity with criterion; nothing to flush).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<44} no samples collected");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).unwrap_or(u32::MAX);
    println!(
        "{name:<44} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        criterion.sample_size(5).bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let mut group = criterion.benchmark_group("grp");
        group.sample_size(3).bench_function("inner", |b| {
            b.iter(|| black_box("x".repeat(4)));
        });
        group.finish();
    }
}
