//! Hand-rolled `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no registry access, so this proc-macro crate is written
//! against `proc_macro` alone — no `syn`, no `quote`.  It parses just enough of the
//! item definition to learn the shape (struct with named/tuple fields, or enum whose
//! variants are unit/tuple/struct), then renders the trait impls as source text and
//! reparses them into a `TokenStream`.
//!
//! Supported shapes cover everything this workspace derives; generic types are
//! rejected with a compile error rather than silently miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => render_serialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => render_deserialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            None => Ok(Shape::UnitStruct { name }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream())?,
                })
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(group.stream()),
                })
            }
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Shape::Enum {
                    name,
                    variants: parse_variants(group.stream())?,
                })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` bodies, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type(&tokens, &mut pos);
        fields.push(field);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Named(parse_named_fields(group.stream())?)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(group.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional explicit discriminant (`= expr`) up to the next comma.
        while pos < tokens.len()
            && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
        {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // consume the comma
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn render_serialize(shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for field in fields {
                pushes.push_str(&format!(
                    "__fields.push(({field:?}.to_string(), \
                     ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n\
                 }}\n}}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                     }}\n}}"
                )
            } else {
                let items = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(vec![{items}])\n\
                     }}\n}}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders = (0..*arity)
                            .map(|i| format!("__f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binders}) => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), {payload})]),\n"
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders = fields.join(", ");
                        let items = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![\
                             ({vname:?}.to_string(), ::serde::Value::Object(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    }
}

fn render_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name})\n\
             }}\n}}"
        ),
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&format!(
                    "{field}: ::serde::Deserialize::from_value(\
                     __value.get({field:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::DeError::custom(\
                     format!(\"field `{{}}` of `{{}}`: {{}}\", {field:?}, {name:?}, e)))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if __value.as_object().is_none() {{\n\
                 return Err(::serde::DeError::custom(\
                 format!(\"expected object for struct `{{}}`\", {name:?})));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__value)?))\n\
                     }}\n}}"
                )
            } else {
                let items = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__items.get({i})\
                             .ok_or_else(|| ::serde::DeError::custom(\"tuple too short\"))?)?"
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     let __items = __value.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for tuple struct\"))?;\n\
                     Ok({name}({items}))\n\
                     }}\n}}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"));
                    }
                    VariantShape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?))"
                            )
                        } else {
                            let items = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i})\
                                         .ok_or_else(|| ::serde::DeError::custom(\
                                         \"variant payload too short\"))?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{{ let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array payload\"))?;\n\
                                 Ok({name}::{vname}({items})) }}"
                            )
                        };
                        data_arms.push_str(&format!("{vname:?} => {body},\n"));
                    }
                    VariantShape::Named(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __payload.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "{vname:?} => Ok({name}::{vname} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::Str(__s) = __value {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 __other => return Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{{}}`\", {name:?}))),\n}}\n\
                 }}\n\
                 let __entries = __value.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"expected variant of `{{}}`\", {name:?})))?;\n\
                 let (__tag, __payload) = __entries.first().ok_or_else(|| \
                 ::serde::DeError::custom(\"empty variant object\"))?;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of `{{}}`\", {name:?}))),\n}}\n\
                 }}\n}}"
            )
        }
    }
}
