//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny slice of serde's surface it actually uses: the
//! `Serialize`/`Deserialize` derive macros plus trait impls for the std types that
//! appear in derived structs.  Serialization goes through an owned [`Value`] tree
//! (the same shape as `serde_json::Value`); `serde_json` renders and parses it.
//!
//! The encoding is self-consistent (everything this workspace writes, it can read
//! back) and follows serde_json conventions where practical: structs become
//! objects, unit enum variants become strings, data-carrying variants become
//! single-key objects, and string-keyed maps become objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// An owned, loosely typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent that fits `i64`).
    Int(i64),
    /// Unsigned integer larger than `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries when the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements when the value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

fn type_error(expected: &str, got: &Value) -> DeError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    DeError::custom(format!("expected {expected}, found {kind}"))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom("unsigned value out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::custom("negative value for unsigned"))?,
                    Value::UInt(u) => *u,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Float(f) => Ok(*f as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(type_error("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| type_error("array", value))?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| type_error("tuple array", value))?;
                let mut iter = items.iter();
                Ok(($(
                    $name::from_value(
                        iter.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Serializes a map: string-keyed maps render as objects, everything else as an
/// array of `[key, value]` pairs.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)> + Clone,
{
    let all_string_keys = entries
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::Str(_)));
    if all_string_keys {
        Value::Object(
            entries
                .map(|(k, v)| {
                    let Value::Str(key) = k.to_value() else {
                        unreachable!("checked above")
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    } else {
        Value::Array(
            entries
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, DeError> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|pair| {
                let pair = pair.as_array().ok_or_else(|| type_error("pair", pair))?;
                if pair.len() != 2 {
                    return Err(DeError::custom("map pair must have two elements"));
                }
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(type_error("map", other)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Hash iteration order is unstable; sort rendered entries for determinism.
        let mut rendered: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        rendered.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        if rendered.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Object(
                rendered
                    .into_iter()
                    .map(|(k, v)| {
                        let Value::Str(key) = k else { unreachable!() };
                        (key, v)
                    })
                    .collect(),
            )
        } else {
            Value::Array(
                rendered
                    .into_iter()
                    .map(|(k, v)| Value::Array(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut rendered: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        rendered.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(rendered)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(f64::from_value(&Value::Int(7)).unwrap(), 7.0);
    }

    #[test]
    fn maps_with_non_string_keys_use_pair_arrays() {
        let mut map = BTreeMap::new();
        map.insert(("a".to_string(), "b".to_string()), 1u64);
        let value = map.to_value();
        assert!(matches!(value, Value::Array(_)));
        let back: BTreeMap<(String, String), u64> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn string_keyed_maps_use_objects() {
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 9u32);
        let value = map.to_value();
        assert!(matches!(value, Value::Object(_)));
        let back: BTreeMap<String, u32> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, map);
    }
}
