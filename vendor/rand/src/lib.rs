//! Minimal, dependency-free stand-in for the `rand` crate (0.8-style API).
//!
//! Provides exactly the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods (`gen`, `gen_bool`,
//! `gen_range`) and `seq::SliceRandom` (`choose`, `shuffle`).  The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid and fully
//! deterministic for a given seed, though the streams differ from upstream `rand`.

/// Core entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is negligible for
                // the span sizes used here and determinism is what matters.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng` stand-in).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Picks one element uniformly, or `None` when the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let hi = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                self.get(hi)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_and_choose_work() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..32).collect();
        let original = items.clone();
        items.shuffle(&mut rng);
        assert_ne!(items, original);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
