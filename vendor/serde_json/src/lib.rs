//! Minimal, dependency-free stand-in for the `serde_json` crate.
//!
//! Renders and parses the [`serde::Value`] tree used by the vendored `serde` stub.
//! Output follows JSON conventions: two-space indentation in pretty mode, `null` for
//! non-finite floats, shortest round-trip formatting for numbers.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error returned by [`from_str`] (and, for API parity, by the writers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a fractional part so the value re-parses as a float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            write_break(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(indent, depth + 1, out);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            write_break(indent, depth, out);
            out.push('}');
        }
    }
}

fn write_break(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: expect `\uXXXX` low surrogate.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("missing low surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let remainder = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(remainder)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("a \"b\"\nc".to_string())),
            (
                "items".to_string(),
                Value::Array(vec![Value::Int(-1), Value::Float(2.5), Value::Null]),
            ),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let compact = to_string(&value).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, value);
        let pretty = to_string_pretty(&value).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, value);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
        let back: Value = from_str("3.0").unwrap();
        assert_eq!(back, Value::Float(3.0));
    }

    #[test]
    fn surrogate_pairs_are_validated() {
        // A valid pair decodes to the astral code point.
        let v: Value = from_str("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
        // A high surrogate must be followed by a real low surrogate.
        assert!(from_str::<Value>("\"\\uD800\\u0041\"").is_err());
        assert!(from_str::<Value>("\"\\uD800\\uD800\"").is_err());
        assert!(from_str::<Value>("\"\\uD800\"").is_err());
        // A lone low surrogate is not a character either.
        assert!(from_str::<Value>("\"\\uDC00\"").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
