//! Workspace-level façade for the AssertSolver reproduction.
//!
//! This crate exists so the repository can host runnable `examples/` and cross-crate
//! integration `tests/` at the workspace root; the actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`assertsolver`] — training, inference and pass@k evaluation (the paper's core);
//! * [`svparse`], [`svsim`], [`svverify`] — the EDA substrate (frontend, simulator,
//!   bounded checker);
//! * [`svmutate`], [`svgen`], [`svdata`] — bug injection, corpus synthesis and the
//!   three-stage data-augmentation pipeline;
//! * [`svmodel`] — the trainable surrogate model and the baseline surrogates.

pub use assertsolver;
pub use svdata;
pub use svgen;
pub use svmodel;
pub use svmutate;
pub use svparse;
pub use svsim;
pub use svverify;
