//! Workspace-level façade for the AssertSolver reproduction.
//!
//! This crate exists so the repository can host runnable `examples/` and cross-crate
//! integration `tests/` at the workspace root; the actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`assertsolver`] — training, inference and pass@k evaluation (the paper's core);
//! * [`svparse`], [`svsim`], [`svverify`] — the EDA substrate (frontend, simulator,
//!   bounded checker);
//! * [`svmutate`], [`svgen`], [`svdata`] — bug injection, corpus synthesis and the
//!   three-stage data-augmentation pipeline;
//! * [`svmodel`] — the trainable surrogate model and the baseline surrogates;
//! * [`svserve`] — the serving layer: a concurrent, sharded repair service that wraps
//!   any [`svmodel::RepairModel`] behind a submit/await API with bounded queues and
//!   backpressure, micro-batching, content-addressed LRU caches with persistent
//!   on-disk snapshots ([`svserve::persist`]) and [`svserve::ServiceMetrics`]
//!   snapshots.  Sampler seeds derive from case content, so results are
//!   byte-identical at any worker count and across cold/warm starts
//!   (`examples/repair_service.rs` and `examples/warm_start.rs` demonstrate the
//!   guarantees live).
//!
//! `assertsolver::evaluate_model` runs its pass@k sampling loop through `svserve`,
//! so every table and figure of the reproduction exercises the serving layer.

pub use assertsolver;
pub use svdata;
pub use svgen;
pub use svmodel;
pub use svmutate;
pub use svparse;
pub use svserve;
pub use svsim;
pub use svverify;
