//! Live fleet introspection: run traffic through `shard-serve` processes,
//! then read the fleet back with the `Stats` wire exchange and the `svstat`
//! binary.
//!
//! ```text
//! cargo run --release --example fleet_stats
//! ```
//!
//! The example spawns two `shard-serve` children, evaluates the quick
//! protocol over the fleet, and then asserts the introspection contract from
//! both surfaces:
//!
//! 1. **library** — [`ShardFleet::fleet_stats`] reports every shard live,
//!    and the merged registry carries the deterministic workload counters
//!    (`service.submitted` equals the cases served) *and* live latency
//!    histograms (`service.repair.solve` with one observation per solve) —
//!    shard processes always run with telemetry on;
//! 2. **binary** — `svstat --sockets a,b` renders the same fleet as a table
//!    (per-shard liveness, hit rates, percentile columns), and
//!    `svstat --json` emits a parseable [`RegistrySnapshot`] exposition;
//! 3. **degradation** — against a half-dead fleet `svstat` still exits 0 and
//!    reports `1/2 shards live`; against an all-dead fleet it exits 1.

use assertsolver::{evaluate_model_over_fleet, EvalConfig, EvalVerifier};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{MetricKind, RegistrySnapshot, ShardFleet};

/// Locates a binary next to this example (`target/<profile>/<name>`),
/// building it if missing.
fn workspace_binary(name: &str, package: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("example lives under target/<profile>/examples")
        .to_path_buf();
    let binary = profile_dir.join(name);
    if !binary.exists() {
        let mut build = Command::new(env!("CARGO"));
        build.args(["build", "-p", package, "--bin", name]);
        if profile_dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build");
        assert!(status.success(), "building {name} failed");
    }
    assert!(binary.exists(), "{name} binary at {binary:?}");
    binary
}

/// One running `shard-serve` child (stdin-close is the shutdown signal).
struct ShardProcess {
    child: Child,
}

impl ShardProcess {
    fn spawn(binary: &Path, socket: &Path, model_file: &Path, seed: u64) -> Self {
        let mut child = Command::new(binary)
            .arg("--socket")
            .arg(socket)
            .arg("--model-file")
            .arg(model_file)
            .args(["--seed", &seed.to_string(), "--workers", "2"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let banner = BufReader::new(stdout)
            .lines()
            .next()
            .expect("shard-serve prints a banner")
            .expect("read shard-serve banner");
        assert!(
            banner.starts_with("LISTENING"),
            "unexpected shard-serve banner: {banner}"
        );
        Self { child }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A mid-example assertion failure unwinds past the explicit `kill()` calls;
/// without this guard the spawned `shard-serve` children would outlive the
/// example and leak (holding their sockets) until the host reaps them.
/// `kill()` is idempotent, so the normal path's explicit kills stay valid.
impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

fn run_svstat(binary: &Path, sockets: &[PathBuf], extra: &[&str]) -> (bool, String, String) {
    let joined = sockets
        .iter()
        .map(|socket| socket.display().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let output = Command::new(binary)
        .args(["--sockets", &joined])
        .args(extra)
        .output()
        .expect("run svstat");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("assertsolver-svstat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let model = AssertSolverModel::base(11);
    let model_file = dir.join("model.json");
    std::fs::write(
        &model_file,
        serde_json::to_string(&model).expect("model serializes"),
    )
    .expect("write model file");

    let cases: Vec<SvaBugEntry> = assertsolver::human_crafted_cases()
        .into_iter()
        .take(6)
        .collect();
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(17)
    };

    let shard_serve = workspace_binary("shard-serve", "svserve");
    let svstat = workspace_binary("svstat", "svserve");
    let timeout = Duration::from_millis(10_000);

    let sockets: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let mut processes: Vec<ShardProcess> = sockets
        .iter()
        .map(|socket| ShardProcess::spawn(&shard_serve, socket, &model_file, config.seed))
        .collect();

    // Drive real traffic so the shards have something to report.
    let fleet = ShardFleet::connect_unix(&sockets, Some(&model.identity()), timeout);
    let verifier = EvalVerifier::start(&config);
    let evaluation = evaluate_model_over_fleet(&model, &cases, &config, &fleet, &verifier);
    assert_eq!(evaluation.results.len(), cases.len());

    // 1. Library surface: every shard answers, and the merged registry holds
    //    both the deterministic workload counters and live latency histograms.
    let stats = fleet.fleet_stats();
    assert_eq!(stats.live(), 2, "both shards answer the stats exchange");
    let submitted = stats.merged.get("service.submitted").expect("submitted");
    assert_eq!(
        submitted.value,
        cases.len() as u64,
        "fleet-wide submitted counter sums to the case count"
    );
    let solve = stats
        .merged
        .get("service.repair.solve")
        .expect("shard processes always serve latency histograms");
    assert_eq!(solve.kind, MetricKind::Histogram);
    assert!(solve.count > 0, "solve latency has observations");
    assert!(solve.percentile(0.99) >= solve.percentile(0.50));
    println!(
        "fleet_stats: 2/2 live, submitted={}, solve p50={}ns p99={}ns",
        submitted.value,
        solve.percentile(0.50),
        solve.percentile(0.99)
    );

    // 2. Binary surface: the table names both shards live and carries the
    //    histogram row; --json round-trips through the snapshot parser.
    let (ok, table, stderr) = run_svstat(&svstat, &sockets, &[]);
    assert!(ok, "svstat against a live fleet exits 0 (stderr: {stderr})");
    assert!(
        table.contains("fleet: 2/2 shards live"),
        "svstat reports liveness:\n{table}"
    );
    assert!(
        table.contains("service.repair.solve"),
        "svstat renders the solve latency row:\n{table}"
    );
    assert!(
        table.contains("hit rate"),
        "svstat derives cache hit rates:\n{table}"
    );
    let (ok, json, _) = run_svstat(&svstat, &sockets, &["--json"]);
    assert!(ok, "svstat --json exits 0");
    let parsed = RegistrySnapshot::parse_json(json.trim()).expect("svstat --json parses");
    assert!(parsed.get("service.submitted").is_some());
    println!("svstat: table + json surfaces agree with fleet_stats");

    // 3. Degradation: kill one shard — svstat still answers (1/2 live, exit
    //    0); kill both — exit 1, no panic, no hang.
    processes[0].kill();
    let (ok, table, _) = run_svstat(&svstat, &sockets, &[]);
    assert!(ok, "svstat with one dead shard still exits 0");
    assert!(
        table.contains("fleet: 1/2 shards live"),
        "svstat reports the dead shard:\n{table}"
    );
    processes[1].kill();
    let (ok, _, stderr) = run_svstat(&svstat, &sockets, &[]);
    assert!(!ok, "svstat against an all-dead fleet exits nonzero");
    assert!(
        stderr.contains("no shard answered"),
        "svstat explains the failure: {stderr}"
    );

    verifier.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("fleet introspection: all invariants held");
}
