//! Quickstart: train a small AssertSolver and let it debug the paper's Fig. 1 bug.
//!
//! Run with `cargo run --release --example quickstart`.

use assertsolver::{human_crafted_cases, train, TrainConfig};
use svmodel::{CaseInput, RepairModel};

fn main() {
    println!("Training a quick AssertSolver (synthetic corpus, PT -> SFT -> DPO)...");
    let artifacts = train(&TrainConfig::quick(7));
    println!(
        "  datasets: {} Verilog-PT, {} Verilog-Bug, {} SVA-Bug entries",
        artifacts.datasets.verilog_pt.len(),
        artifacts.datasets.verilog_bug.len(),
        artifacts.datasets.sva_bug.len()
    );

    let fig1 = human_crafted_cases()
        .into_iter()
        .find(|c| c.module_name == "accu_human")
        .expect("the Fig. 1 accumulator case is part of SVA-Eval-Human");
    println!("\nLogs handed to the model:\n{}", fig1.logs);

    let response = &artifacts
        .assert_solver
        .solve(&CaseInput::from_entry(&fig1), 1, 0.2, 1)[0];
    println!("Model answer (JSON): {}", response.to_json());
    println!(
        "\nGolden solution   : line {} -> {}",
        fig1.bug_line_number, fig1.fixed_line
    );
    println!(
        "Model localisation: line {} -> {}",
        response.bug_line_number, response.fixed_line
    );
}
