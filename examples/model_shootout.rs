//! Compare the baseline surrogate models (stand-ins for Claude-3.5, GPT-4, o1-preview,
//! CodeLlama, Llama-3.1 and the Deepseek base model) on the human-crafted benchmark.
//!
//! Run with `cargo run --release --example model_shootout`.

use assertsolver::{evaluate_model, human_crafted_cases, render_passk_table, EvalConfig};
use svmodel::{all_baselines, RepairModel};

fn main() {
    let cases = human_crafted_cases();
    println!("evaluating {} human-crafted SVA-Eval cases", cases.len());
    let config = EvalConfig::quick(5);
    let rows: Vec<(String, assertsolver::PassK)> = all_baselines()
        .iter()
        .map(|model| {
            let eval = evaluate_model(model, &cases, &config);
            (model.name().to_string(), eval.passk())
        })
        .collect();
    println!(
        "\n{}",
        render_passk_table("Baseline surrogates on SVA-Eval-Human", &rows)
    );
}
