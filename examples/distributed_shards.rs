//! Distributed shard fabric: sample against `shard-serve` processes over unix
//! sockets and prove the result is **byte-identical** to the in-process run.
//!
//! ```text
//! cargo build --release -p svserve            # builds the shard-serve binary
//! cargo run --release --example distributed_shards [-- --shards N]
//! ```
//!
//! The example spawns `N` (default 2) `shard-serve` children, each hosting the
//! same `AssertSolverModel` behind its own socket and snapshot file, then runs
//! the same evaluation four ways:
//!
//! 1. **in-process** — the plain local pipeline, the reference bytes;
//! 2. **cold remote** — over the wire against freshly started shards;
//! 3. **warm remote** — against *restarted* shards that warm-start their
//!    response caches from the snapshots flushed at shutdown (the fleet
//!    metrics must show remote cache hits);
//! 4. **degraded** — after SIGKILLing one shard mid-connection: the run must
//!    still complete with every case accounted for, the killed shard's cases
//!    degrading to counted wire errors — never a client panic or hang.
//!
//! Runs 1–3 must serialize to identical JSON: placement is a pure function of
//! request content, sampler seeds derive from case content plus the shared
//! `--seed`, and the `Hello` fingerprint handshake refuses a fleet serving a
//! different model.  CI's transport matrix runs this example at 1 and 2 shards.

use assertsolver::{
    evaluate_model_over_fleet, evaluate_model_with, EvalConfig, EvalVerifier, ShardSpec,
};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, CaseInput, RepairModel};
use svserve::{shard_for_key, RepairRequest, ShardFleet};

/// Locates the `shard-serve` binary next to this example
/// (`target/<profile>/shard-serve`), building it if it is missing.
fn shard_serve_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    // target/<profile>/examples/distributed_shards -> target/<profile>
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("example lives under target/<profile>/examples")
        .to_path_buf();
    let binary = profile_dir.join("shard-serve");
    if !binary.exists() {
        let mut build = Command::new(env!("CARGO"));
        build.args(["build", "-p", "svserve", "--bin", "shard-serve"]);
        if profile_dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build for shard-serve");
        assert!(status.success(), "building shard-serve failed");
    }
    assert!(binary.exists(), "shard-serve binary at {binary:?}");
    binary
}

/// One running `shard-serve` child.  Closing its stdin asks it to flush its
/// snapshot and exit; killing it simulates a crashed shard.
struct ShardProcess {
    child: Child,
}

impl ShardProcess {
    fn spawn(binary: &Path, socket: &Path, model_file: &Path, snapshot: &Path, seed: u64) -> Self {
        let mut child = Command::new(binary)
            .arg("--socket")
            .arg(socket)
            .arg("--model-file")
            .arg(model_file)
            .arg("--snapshot-file")
            .arg(snapshot)
            .args(["--seed", &seed.to_string(), "--workers", "2"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard-serve");
        // The child prints `LISTENING <socket>` once the socket is bound.
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("shard-serve prints a banner")
            .expect("read shard-serve banner");
        assert!(
            banner.starts_with("LISTENING"),
            "unexpected shard-serve banner: {banner}"
        );
        Self { child }
    }

    /// Graceful shutdown: close stdin (the child's exit signal) and wait, so
    /// the shard flushes its response snapshot for the next warm start.
    fn shutdown(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("wait for shard-serve");
        assert!(status.success(), "shard-serve exited with {status}");
    }

    /// Simulated crash: SIGKILL, no flush, no goodbye on the wire.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_fleet(
    binary: &Path,
    dir: &Path,
    shards: usize,
    model_file: &Path,
    seed: u64,
) -> (Vec<ShardProcess>, Vec<PathBuf>) {
    let mut processes = Vec::new();
    let mut sockets = Vec::new();
    for shard in 0..shards {
        let socket = dir.join(format!("shard-{shard}.sock"));
        let snapshot = dir.join(format!("shard-{shard}-snapshot.json"));
        processes.push(ShardProcess::spawn(
            binary, &socket, model_file, &snapshot, seed,
        ));
        sockets.push(socket);
    }
    (processes, sockets)
}

fn eval_json(evaluation: &assertsolver::ModelEvaluation) -> String {
    serde_json::to_string(evaluation).expect("evaluation serializes")
}

fn main() {
    let mut shards = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--shards takes a positive integer");
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    let dir = std::env::temp_dir().join(format!("assertsolver-shards-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let model = AssertSolverModel::base(11);
    let model_file = dir.join("model.json");
    std::fs::write(
        &model_file,
        serde_json::to_string(&model).expect("model serializes"),
    )
    .expect("write model file");

    let cases: Vec<SvaBugEntry> = assertsolver::human_crafted_cases()
        .into_iter()
        .take(6)
        .collect();
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(17)
    };

    // 1. The reference: the plain in-process pipeline.
    let verifier = EvalVerifier::start(&config);
    let baseline = evaluate_model_with(&model, &cases, &config, &verifier);
    let baseline_json = eval_json(&baseline);
    println!(
        "in-process: {} cases, pass@1 = {:.3}",
        baseline.results.len(),
        baseline.passk().pass1
    );

    let binary = shard_serve_binary();
    let spec_timeout = Duration::from_millis(10_000);

    // 2. Cold remote: freshly started shards, empty caches.
    let (processes, sockets) = spawn_fleet(&binary, &dir, shards, &model_file, config.seed);
    let spec = ShardSpec::new(
        sockets
            .iter()
            .map(|socket| socket.display().to_string())
            .collect(),
    );
    let cold_fleet = ShardFleet::connect_unix(&spec.sockets, Some(&model.identity()), spec_timeout);
    let cold = evaluate_model_over_fleet(&model, &cases, &config, &cold_fleet, &verifier);
    let cold_metrics = cold_fleet.metrics();
    println!("{}", cold_metrics.render());
    assert_eq!(cold_metrics.dead_shards, 0, "all shards connected");
    assert_eq!(cold_metrics.wire_errors, 0, "cold run is error-free");
    assert_eq!(
        baseline_json,
        eval_json(&cold),
        "cold remote evaluation must be byte-identical to the in-process run"
    );
    println!("cold remote over {shards} shard(s): byte-identical to in-process");

    // Graceful shutdown flushes each shard's response snapshot.
    drop(cold_fleet);
    for process in processes {
        process.shutdown();
    }

    // 3. Warm remote: restarted shards preload those snapshots.
    let (mut processes, _) = spawn_fleet(&binary, &dir, shards, &model_file, config.seed);
    let warm_fleet = ShardFleet::connect_unix(&spec.sockets, Some(&model.identity()), spec_timeout);
    let warm = evaluate_model_over_fleet(&model, &cases, &config, &warm_fleet, &verifier);
    let warm_metrics = warm_fleet.metrics();
    println!("{}", warm_metrics.render());
    assert_eq!(
        baseline_json,
        eval_json(&warm),
        "warm remote evaluation must be byte-identical to the in-process run"
    );
    assert!(
        warm_metrics.remote_cache_hits > 0,
        "restarted shards must serve from their warm-started response caches"
    );
    println!(
        "warm remote: byte-identical again, {} of {} answers from warm shard caches",
        warm_metrics.remote_cache_hits, warm_metrics.completed
    );

    // 4. Degradation: SIGKILL the shard holding the most cases, keep the
    //    existing connections, and re-run.  The evaluation must complete with
    //    every case present; the killed shard's cases become counted wire
    //    errors (zero-sample case results) — never a panic or a hang.
    let mut load = vec![0usize; shards];
    for entry in &cases {
        let request = RepairRequest::new(
            CaseInput::from_entry(entry),
            config.samples,
            config.temperature,
        );
        load[shard_for_key(request.key(), shards)] += 1;
    }
    let victim = (0..shards).max_by_key(|&shard| load[shard]).unwrap_or(0);
    let victim_cases = load[victim];
    assert!(victim_cases > 0, "victim shard must hold at least one case");
    println!(
        "killing shard {victim} ({victim_cases} of {} cases place there)",
        cases.len()
    );
    processes[victim].kill();
    let degraded = evaluate_model_over_fleet(&model, &cases, &config, &warm_fleet, &verifier);
    let degraded_metrics = warm_fleet.metrics();
    println!("{}", degraded_metrics.render());
    assert_eq!(
        degraded.results.len(),
        cases.len(),
        "a killed shard must not lose cases, only degrade them"
    );
    assert_eq!(
        degraded_metrics.wire_errors, victim_cases as u64,
        "every case placed on the killed shard is a counted wire error"
    );
    let zero_sample = degraded
        .results
        .iter()
        .filter(|result| result.n == 0)
        .count();
    assert_eq!(
        zero_sample, victim_cases,
        "degraded cases report zero samples"
    );
    println!(
        "degraded run completed: {} wire errors counted, {} healthy cases still byte-faithful",
        degraded_metrics.wire_errors,
        cases.len() - zero_sample
    );

    verifier.shutdown();
    for mut process in processes {
        process.kill();
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("distributed shard fabric: all invariants held");
}
