//! Cross-process causal tracing: prove the trace tree reconstructed from a
//! live 2-shard `shard-serve` fleet is byte-identical to the in-process one,
//! then drive the `svtrace` and `svtop` binaries against the same fleet.
//!
//! ```text
//! cargo run --release --example trace_fleet
//! ```
//!
//! The deterministic projection of a trace forest (ids, parents, logical
//! start ticks, units — everything except wall clocks) is a pure function of
//! (corpus, salt): the shard derives its `sample` span from the same remote
//! context the driver sent in the `SubmitTraced` frame, so merging the
//! `TraceReply` spans into the driver's tree reproduces the exact bytes the
//! in-process evaluation emits.  This example pins that acceptance bar
//! against real child processes (not the in-library loopback the
//! `trace_determinism` suite covers), then asserts the operator surfaces:
//!
//! 1. **library** — in-process vs fleet `render_deterministic()` bytes match;
//! 2. **svtrace** — `--sockets --deterministic` prints those same bytes, and
//!    `--slowest 3 --min-coverage 95` exits 0 (≥95% of each listed session's
//!    wall-clock is attributed to named spans);
//! 3. **svtop** — `--once` renders every shard live with plausible window
//!    columns, `--once --json` emits a parseable per-shard exposition, and
//!    against an all-dead fleet `--once` exits 1 without hanging.

use assertsolver::{
    evaluate_model_observed, evaluate_model_over_fleet_traced, EvalConfig, EvalVerifier,
};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use svdata::SvaBugEntry;
use svmodel::{AssertSolverModel, RepairModel};
use svserve::{ShardFleet, TelemetryHandle, TraceForest, TraceHandle, TracerHandle};

/// Locates a binary next to this example (`target/<profile>/<name>`),
/// building it if missing.
fn workspace_binary(name: &str, package: &str) -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let profile_dir = exe
        .parent()
        .and_then(Path::parent)
        .expect("example lives under target/<profile>/examples")
        .to_path_buf();
    let binary = profile_dir.join(name);
    if !binary.exists() {
        let mut build = Command::new(env!("CARGO"));
        build.args(["build", "-p", package, "--bin", name]);
        if profile_dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build");
        assert!(status.success(), "building {name} failed");
    }
    assert!(binary.exists(), "{name} binary at {binary:?}");
    binary
}

/// One running `shard-serve` child (stdin-close is the shutdown signal).
struct ShardProcess {
    child: Child,
}

impl ShardProcess {
    fn spawn(binary: &Path, socket: &Path, model_file: &Path, seed: u64) -> Self {
        let mut child = Command::new(binary)
            .arg("--socket")
            .arg(socket)
            .arg("--model-file")
            .arg(model_file)
            .args(["--seed", &seed.to_string(), "--workers", "2"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let banner = BufReader::new(stdout)
            .lines()
            .next()
            .expect("shard-serve prints a banner")
            .expect("read shard-serve banner");
        assert!(
            banner.starts_with("LISTENING"),
            "unexpected shard-serve banner: {banner}"
        );
        Self { child }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Assertion failures unwind past the explicit kills; the guard keeps the
/// children from outliving the example (kill() is idempotent).
impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

fn run(binary: &Path, args: &[&str]) -> (bool, String, String) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .expect("run binary");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("assertsolver-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let seed = 2025;
    let model = AssertSolverModel::base(seed);
    let model_file = dir.join("model.json");
    std::fs::write(
        &model_file,
        serde_json::to_string(&model).expect("model serializes"),
    )
    .expect("write model file");

    let cases: Vec<SvaBugEntry> = assertsolver::human_crafted_cases()
        .into_iter()
        .take(6)
        .collect();
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        ..EvalConfig::quick(seed)
    };

    // 1. The in-process reference tree.  Salt 0 matches what `svtrace` uses,
    //    so binary output below is comparable byte-for-byte.
    let trace = TraceHandle::new(0);
    let verifier = EvalVerifier::start(&config);
    evaluate_model_observed(
        &model,
        &cases,
        &config,
        &verifier,
        &TracerHandle::off(),
        &TelemetryHandle::off(),
        &trace,
    );
    verifier.shutdown();
    let reference = TraceForest::from_spans(trace.drain()).render_deterministic();
    assert!(!reference.is_empty(), "in-process run produced spans");

    let shard_serve = workspace_binary("shard-serve", "svserve");
    let svtrace = workspace_binary("svtrace", "assertsolver-bench");
    let svtop = workspace_binary("svtop", "svserve");
    let timeout = Duration::from_millis(10_000);

    let sockets: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let mut processes: Vec<ShardProcess> = sockets
        .iter()
        .map(|socket| ShardProcess::spawn(&shard_serve, socket, &model_file, config.seed))
        .collect();
    let socket_list = sockets
        .iter()
        .map(|socket| socket.display().to_string())
        .collect::<Vec<_>>()
        .join(",");

    // 2. Library surface: the tree merged from live `TraceReply` frames is
    //    byte-identical to the in-process reference.
    let fleet = ShardFleet::connect_unix(&sockets, Some(&model.identity()), timeout);
    let trace = TraceHandle::new(0);
    let verifier = EvalVerifier::start(&config);
    evaluate_model_over_fleet_traced(&model, &cases, &config, &fleet, &verifier, &trace);
    verifier.shutdown();
    assert_eq!(fleet.metrics().wire_errors, 0, "clean fleet run");
    let remote = TraceForest::from_spans(trace.drain()).render_deterministic();
    assert_eq!(
        remote, reference,
        "cross-process trace tree is byte-identical to the in-process tree"
    );
    println!("trace_fleet: library trees match ({} bytes)", remote.len());

    // 3. svtrace against the live (now warm) fleet: the deterministic
    //    projection still matches — warm caches change wall clocks only —
    //    and every session clears the 95% attribution bar.
    let (ok, stdout, stderr) = run(
        &svtrace,
        &[
            "--seed",
            &seed.to_string(),
            "--limit",
            "6",
            "--sockets",
            &socket_list,
            "--deterministic",
        ],
    );
    assert!(ok, "svtrace --deterministic exits 0 (stderr: {stderr})");
    assert_eq!(
        stdout, reference,
        "svtrace --sockets --deterministic prints the reference bytes"
    );
    let (ok, stdout, stderr) = run(
        &svtrace,
        &[
            "--seed",
            &seed.to_string(),
            "--limit",
            "6",
            "--sockets",
            &socket_list,
            "--slowest",
            "3",
            "--min-coverage",
            "95",
        ],
    );
    assert!(
        ok,
        "svtrace --slowest 3 --min-coverage 95 exits 0 (stderr: {stderr})"
    );
    assert!(
        stdout.lines().count() == 4,
        "--slowest 3 prints a header and three rows:\n{stdout}"
    );
    println!("trace_fleet: svtrace binary agrees and clears the coverage bar");

    // 4. svtop against the same fleet: the shards have served real traffic,
    //    so the window plane reports completions and latency quantiles.
    let (ok, table, stderr) = run(&svtop, &["--sockets", &socket_list, "--once"]);
    assert!(ok, "svtop --once exits 0 (stderr: {stderr})");
    assert!(
        table.contains("fleet: 2/2 shards live"),
        "svtop reports liveness:\n{table}"
    );
    assert!(table.contains("p99_ns"), "svtop renders quantile columns");
    let (ok, json, _) = run(&svtop, &["--sockets", &socket_list, "--once", "--json"]);
    assert!(ok, "svtop --once --json exits 0");
    assert!(
        json.contains("\"ok\":true") && json.contains("\"width\":"),
        "svtop --json carries per-shard window expositions:\n{json}"
    );
    println!("trace_fleet: svtop table + json surfaces answer");

    // 5. Degradation: an all-dead fleet is a clean nonzero exit, not a hang.
    for process in &mut processes {
        process.kill();
    }
    let (ok, _, stderr) = run(&svtop, &["--sockets", &socket_list, "--once"]);
    assert!(!ok, "svtop against an all-dead fleet exits nonzero");
    assert!(
        stderr.contains("no shard answered"),
        "svtop explains the failure: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("trace_fleet: all invariants held");
}
