//! Async session runtime at scale: ≥ 10,000 concurrent in-flight repair
//! sessions multiplexed over ≤ 4 driver threads, plus deterministic admission
//! shedding.
//!
//! ```text
//! cargo run --release --example async_sessions [-- --sessions 10000 --drivers 4]
//! ```
//!
//! The old serving surface parked one OS thread per waiting caller, so 10,000
//! concurrent sessions would have needed 10,000 threads.  Here every session is
//! a waker-scheduled state machine (submit → sampled → verify → done) on the
//! `svserve::SessionEngine`:
//!
//! 1. **Scale phase** — the repair model is gated shut, `--sessions` sessions
//!    are spawned, and the process *proves* they are all in flight at once on a
//!    handful of drivers before the gate opens and the pools drain them.  Exits
//!    nonzero unless peak in-flight ≥ the session count and the driver count
//!    stayed ≤ 4.
//! 2. **Admission phase** — a second pool runs with `max_in_flight = 64` and is
//!    offered 96 gated sessions: exactly 64 must be admitted and exactly 32
//!    shed with a deterministic `Busy`.  Exits nonzero otherwise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use svmodel::{CaseInput, RepairModel, Response};
use svserve::{
    verdict_key, RepairRequest, RepairService, ServiceConfig, SessionConfig, SessionEngine,
    SessionOutcome, SessionPhase, SubmitError, VerifyConfig, VerifyPool, VerifyRequest,
};

/// Hard ceiling the scale claim is made against.
const MAX_DRIVERS: usize = 4;

fn fail(message: &str) -> ! {
    eprintln!("FAILED: {message}");
    std::process::exit(1);
}

/// A gate the main thread opens once every session is provably in flight;
/// while closed, pool workers block inside `solve`, so nothing completes.
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }
}

/// A cheap deterministic model behind a gate.
struct GatedEchoModel {
    gate: Arc<Gate>,
}

impl RepairModel for GatedEchoModel {
    fn name(&self) -> &str {
        "gated-echo"
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        _temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.gate.wait_open();
        (0..samples)
            .map(|i| Response {
                bug_line_number: 1 + i as u32,
                buggy_line: case.buggy_source.clone(),
                fixed_line: format!("fix {} seed {seed}", case.spec),
                cot: None,
            })
            .collect()
    }
}

fn request(tag: usize) -> RepairRequest {
    RepairRequest::new(
        CaseInput {
            spec: format!("spec {tag}"),
            buggy_source: format!("module m{tag}(); assign y = {tag}; endmodule"),
            logs: format!("assertion a{tag} failed"),
        },
        1,
        0.2,
    )
}

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let sessions = arg_value("--sessions").unwrap_or(10_000);
    let drivers = arg_value("--drivers")
        .or_else(svserve::env_drivers)
        .unwrap_or(MAX_DRIVERS)
        .min(MAX_DRIVERS);

    println!("== async_sessions: {sessions} sessions over {drivers} driver thread(s) ==\n");

    // ---------------------------------------------------------------- phase 1
    // Scale: every session runs submit → sampled → verify → done against a
    // gated repair pool and a live verify pool.
    let gate = Gate::new();
    let service = RepairService::start(
        Arc::new(GatedEchoModel {
            gate: Arc::clone(&gate),
        }),
        ServiceConfig {
            workers: 2,
            shard_capacity: 256,
            cache_capacity: 2 * sessions.max(1),
            ..ServiceConfig::default()
        },
    );
    let verifier: VerifyPool<String> = VerifyPool::start(
        Arc::new(|case: &String, response: &Response| response.fixed_line.contains(case.as_str())),
        VerifyConfig {
            workers: 2,
            cache_capacity: 2 * sessions.max(1),
            ..VerifyConfig::default()
        },
    );
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(drivers));
    let monitor = engine.monitor();

    let session_futures: Vec<_> = (0..sessions)
        .map(|tag| {
            let service = &service;
            let verifier = &verifier;
            let monitor = monitor.clone();
            async move {
                let submit = match service.submit_async(request(tag)) {
                    Ok(submit) => submit,
                    Err(err) => fail(&format!("scale-phase submit refused: {err}")),
                };
                let ticket = submit.await.expect("pool open");
                monitor.phase(SessionPhase::Submitted);
                let outcome = ticket.await;
                monitor.phase(SessionPhase::Sampled);
                let case = format!("spec {tag}");
                let response = outcome.responses[0].clone();
                let key = verdict_key(&[case.as_bytes()], &response, b"async-sessions-demo");
                monitor.phase(SessionPhase::Verifying);
                let verdict = verifier
                    .submit_async(VerifyRequest::new(Arc::new(case), response, key))
                    .expect("verify pool open")
                    .await
                    .expect("verify pool open")
                    .await;
                monitor.phase(SessionPhase::Done);
                verdict.verdict
            }
        })
        .collect();

    let started = Instant::now();
    let verdicts = std::thread::scope(|scope| {
        // The sessions run on the engine's drivers; this scope thread only
        // spawns them and joins the outcomes.
        let runner = scope.spawn(|| engine.run_all(session_futures));

        // Prove the scale claim while the gate is shut: every session spawned,
        // none finished, all multiplexed over `drivers` threads.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let metrics = engine.metrics();
            if metrics.in_flight_sessions as usize == sessions {
                break;
            }
            if Instant::now() > deadline {
                fail(&format!(
                    "only {} of {sessions} sessions became concurrently in-flight",
                    metrics.in_flight_sessions
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let peak = engine.metrics().peak_in_flight_sessions as usize;
        println!(
            "scale: {peak} sessions concurrently in flight on {} driver(s) \
             ({}x the driver count)",
            engine.drivers(),
            peak / engine.drivers().max(1)
        );
        if peak < sessions {
            fail(&format!("peak in-flight {peak} < session count {sessions}"));
        }
        if engine.drivers() > MAX_DRIVERS {
            fail(&format!(
                "driver count {} exceeds the claimed ceiling {MAX_DRIVERS}",
                engine.drivers()
            ));
        }

        // Open the gate and drain everything.
        gate.open();
        runner.join().expect("runner thread")
    });
    let elapsed = started.elapsed();

    let completed = verdicts
        .iter()
        .filter(|outcome| outcome.is_completed())
        .count();
    if completed != sessions {
        fail(&format!("{completed} of {sessions} sessions completed"));
    }
    if !verdicts
        .iter()
        .all(|outcome| *outcome == SessionOutcome::Completed(true))
    {
        fail("every echoed fix must pass verification");
    }
    println!(
        "scale: all {sessions} sessions completed in {:.2}s after the gate opened\n",
        elapsed.as_secs_f64()
    );
    println!("{}\n", engine.metrics().render());
    println!(
        "{}\n",
        service.metrics().with_verify(verifier.metrics()).render()
    );
    service.shutdown();
    verifier.shutdown();

    // ---------------------------------------------------------------- phase 2
    // Admission control: 96 gated sessions offered to a 64-slot pool — exactly
    // 64 admitted, exactly 32 shed with a deterministic `Busy`.
    const LIMIT: usize = 64;
    const OFFERED: usize = 96;
    let gate = Gate::new();
    let limited = RepairService::start(
        Arc::new(GatedEchoModel {
            gate: Arc::clone(&gate),
        }),
        ServiceConfig {
            workers: 2,
            max_in_flight: LIMIT,
            ..ServiceConfig::default()
        },
    );
    let engine = SessionEngine::new(SessionConfig::default().with_drivers(drivers));
    let shed_live = Arc::new(AtomicUsize::new(0));
    let admission_futures: Vec<_> = (0..OFFERED)
        .map(|tag| {
            let limited = &limited;
            let shed_live = Arc::clone(&shed_live);
            async move {
                match limited.submit_async(request(tag)) {
                    Ok(submit) => {
                        submit.await.expect("pool open").await;
                        "served"
                    }
                    Err(SubmitError::Busy) => {
                        shed_live.fetch_add(1, Ordering::Relaxed);
                        "shed"
                    }
                    Err(SubmitError::Closed) => fail("limited pool closed unexpectedly"),
                }
            }
        })
        .collect();
    let outcomes = std::thread::scope(|scope| {
        scope.spawn(|| {
            // Open the gate only once every submission attempt has resolved
            // while nothing could complete, making the shed count exact.
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                let in_flight = limited.metrics().in_flight_sessions;
                let shed = shed_live.load(Ordering::Relaxed);
                if in_flight == LIMIT && shed == OFFERED - LIMIT {
                    break;
                }
                if Instant::now() > deadline {
                    fail(&format!(
                        "admission did not settle: {in_flight} in flight, {shed} shed"
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            gate.open();
        });
        engine.run_all(admission_futures)
    });
    let served = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Completed("served"))
        .count();
    let shed = outcomes
        .iter()
        .filter(|o| **o == SessionOutcome::Completed("shed"))
        .count();
    let metrics = limited.metrics();
    println!(
        "admission: offered {OFFERED} to a {LIMIT}-slot pool -> {served} served, {shed} shed \
         (pool counted {})",
        metrics.shed_busy
    );
    if served != LIMIT || shed != OFFERED - LIMIT || metrics.shed_busy as usize != shed {
        fail("admission shedding must be exact and deterministic");
    }
    if metrics.peak_in_flight_sessions != LIMIT {
        fail(&format!(
            "peak in-flight {} must equal the admission limit {LIMIT}",
            metrics.peak_in_flight_sessions
        ));
    }
    limited.shutdown();

    println!("\nOK: async session runtime sustained the load and shed exactly the overflow");
}
