//! Multi-model routing over the quick corpus: a cost ladder of baseline
//! surrogates served by one `svserve::ModelRouter`, with escalation on
//! verification failure.
//!
//! ```text
//! cargo run --release --example model_ladder                         # both policies
//! cargo run --release --example model_ladder -- --policy escalate    # focus escalation
//! cargo run --release --example model_ladder -- --policy absplit     # focus A/B split
//! cargo run --release --example model_ladder -- --expect-escalations # CI assertion mode
//! ```
//!
//! The run evaluates every rung (pinned), the deterministic A/B split, and the
//! cheapest-first escalation policy in one pass, then prints the per-rung solve
//! rates and the per-case attempt trail.  With `--expect-escalations` the
//! example exits nonzero unless (a) at least one failed verdict triggered a
//! re-submit and (b) the escalation policy solved strictly more cases than its
//! cheapest rung alone — the property the routing layer exists for.

use std::sync::Arc;
use svmodel::{BaselineKind, BaselineModel, CaseInput, RepairModel};
use svserve::{ab_arm, RepairRequest};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let expect_escalations = args.iter().any(|a| a == "--expect-escalations");
    let policy = args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both")
        .to_string();
    if !["both", "escalate", "absplit"].contains(&policy.as_str()) {
        eprintln!("unknown --policy {policy:?} (expected escalate, absplit or both)");
        std::process::exit(2);
    }

    // The quick corpus: machine-generated pipeline cases (the same protocol the
    // route-determinism suite pins down).
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig::tiny(23));
    let mut entries = pipeline.datasets.sva_bug;
    entries.truncate(6);
    let config = assertsolver::EvalConfig {
        workers: 2,
        verify_workers: 2,
        samples: 4,
        ..assertsolver::EvalConfig::quick(19)
    };

    let models: Vec<Arc<dyn RepairModel + Send + Sync>> = [
        BaselineKind::RandomGuess,
        BaselineKind::ConeAnalyst,
        BaselineKind::IterativeReasoner,
    ]
    .into_iter()
    .map(|kind| Arc::new(BaselineModel::new(kind)) as Arc<dyn RepairModel + Send + Sync>)
    .collect();

    println!(
        "model ladder: {} rungs x {} cases x {} samples",
        models.len(),
        entries.len(),
        config.samples
    );
    let report = assertsolver::evaluate_ladder(&models, &entries, &config);
    let evaluation = &report.evaluation;

    // Per-rung solve rates, in escalation (cheapest-first) order, then the two
    // routed policies.
    println!(
        "\n{:<34} {:>6} {:>10} {:>8}",
        "rung", "cost", "solved", "pass@1"
    );
    for &idx in &report.ladder {
        let eval = &evaluation.per_model[idx];
        println!(
            "{:<34} {:>6} {:>7}/{:<2} {:>8.3}",
            eval.model,
            models[idx].cost(),
            eval.solved_cases(),
            entries.len(),
            eval.passk().pass1
        );
    }
    for eval in [&evaluation.ab_split, &evaluation.escalate] {
        println!(
            "{:<34} {:>6} {:>7}/{:<2} {:>8.3}",
            eval.model,
            "-",
            eval.solved_cases(),
            entries.len(),
            eval.passk().pass1
        );
    }

    if policy == "both" || policy == "escalate" {
        println!("\nattempt trails (escalation, cheapest rung first):");
        println!("{:<18} {:>6} {:<9} trail", "case", "rungs", "outcome");
        for (trail, result) in evaluation.trails.iter().zip(&evaluation.escalate.results) {
            let steps: Vec<String> = trail
                .attempts
                .iter()
                .map(|a| {
                    format!(
                        "{}[{}]{}",
                        a.backend.split(' ').next().unwrap_or(&a.backend),
                        a.cost,
                        if a.correct_candidates > 0 { "+" } else { "-" }
                    )
                })
                .collect();
            println!(
                "{:<18} {:>6} {:<9} {}",
                trail.module_name,
                trail.attempts.len(),
                if result.c > 0 { "solved" } else { "exhausted" },
                steps.join(" -> ")
            );
        }
    }

    if policy == "both" || policy == "absplit" {
        println!("\nA/B split arms (content-hash, stable at any pool shape):");
        for (idx, entry) in entries.iter().enumerate() {
            let request = RepairRequest::new(
                CaseInput::from_entry(entry),
                config.samples,
                config.temperature,
            );
            let arm = ab_arm(request.key(), models.len());
            // The split evaluation must equal the arm's own pinned result.
            assert_eq!(
                evaluation.ab_split.results[idx], evaluation.per_model[arm].results[idx],
                "case {idx} was not served by its predicted arm"
            );
            println!(
                "  {:<18} -> arm {arm} ({})",
                entry.module_name, evaluation.per_model[arm].model
            );
        }
        println!("  (assertion passed: every case served by its predicted arm)");
    }

    println!("\n{}", report.metrics.render());

    if expect_escalations {
        let escalation = &report.metrics.escalation;
        assert!(
            escalation.verdict_resubmits > 0,
            "expected at least one verdict-triggered re-submit, got none"
        );
        let cheapest = &evaluation.per_model[report.ladder[0]];
        assert!(
            evaluation.escalate.solved_cases() > cheapest.solved_cases(),
            "escalation must solve more cases than its cheapest rung alone \
             ({} vs {})",
            evaluation.escalate.solved_cases(),
            cheapest.solved_cases()
        );
        println!(
            "\nescalation verified: {} re-submits, ladder solved {} vs cheapest rung {}",
            escalation.verdict_resubmits,
            evaluation.escalate.solved_cases(),
            cheapest.solved_cases()
        );
    }
}
