//! Simulate the paper's Fig. 1 buggy accumulator and show the assertion-failure logs
//! a verification engineer (or AssertSolver) would start from.
//!
//! Run with `cargo run --release --example accumulator_debug`.

use std::collections::BTreeMap;

const BUGGY: &str = r#"
module accu(input clk, input rst_n, input valid_in, output reg valid_out);
  wire end_cnt;
  reg [1:0] cnt;
  assign end_cnt = (cnt == 2'd3) && valid_in;
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) cnt <= 2'd0;
    else if (valid_in) cnt <= cnt + 2'd1;
  end
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) valid_out <= 0;
    else if (!end_cnt) valid_out <= 1;
    else valid_out <= 0;
  end
  property valid_out_check;
    @(posedge clk) disable iff (!rst_n) end_cnt |-> ##1 valid_out == 1;
  endproperty
  valid_out_check_assertion: assert property (valid_out_check) else $error("valid_out should be high when end_cnt high");
endmodule
"#;

fn main() {
    let module = svparse::parse_module(BUGGY).expect("buggy design parses");
    let stimulus: Vec<svsim::InputVector> = (0..16)
        .map(|i| {
            BTreeMap::from([
                ("rst_n".to_string(), u64::from(i >= 1)),
                ("valid_in".to_string(), 1u64),
            ])
        })
        .collect();
    let outcome = svsim::simulate(&module, &stimulus).expect("simulation runs");
    println!("{}", outcome.log);
    println!("failures observed: {}", outcome.failures.len());
    for failure in &outcome.failures {
        println!("  {failure}");
    }

    let verdict = svverify::BoundedChecker::default().check_module(&module);
    println!(
        "bounded checker verdict: {}",
        if verdict.failed() {
            "assertion can be violated (bug confirmed)"
        } else {
            "no violation found"
        }
    );
}
