//! Cross-process warm start: evaluation caches persisted to `ASSERTSOLVER_CACHE_DIR`.
//!
//! Run this example twice against the same cache directory:
//!
//! ```text
//! export ASSERTSOLVER_CACHE_DIR=/tmp/assertsolver-cache
//! cargo run --release --example warm_start                  # cold: populates the dir
//! cargo run --release --example warm_start -- --expect-warm # warm: replays from disk
//! ```
//!
//! The first run samples and judges everything, then flushes both caches to disk
//! (`responses-<model>-<hash>.json` + `verdicts-<hash>.json`) and records the serialized
//! `ModelEvaluation` in a protocol-keyed `eval-reference-<hash>.json`.  Every later run asserts its own
//! evaluation is **byte-identical** to that reference — the warm-start invariant —
//! and, with `--expect-warm`, additionally asserts that the verdict cache was
//! preloaded from the snapshot and reported a nonzero warm hit rate.  CI's
//! warm-cache job is exactly this two-run sequence.

use assertsolver::{evaluate_model_with, EvalConfig, EvalVerifier};
use svmodel::{AssertSolverModel, RepairModel};

/// Hash over the protocol (config + model identity + corpus), keying the
/// reference file: a changed protocol writes a fresh reference instead of
/// panicking against a stale one, mirroring the snapshots' own invalidation.
fn protocol_hash(config: &EvalConfig, model_identity: &str, modules: &[String]) -> u64 {
    let config_json = serde_json::to_string(config).expect("config serialises");
    let mut keyed = Vec::new();
    for part in std::iter::once(config_json.as_str())
        .chain(std::iter::once(model_identity))
        .chain(modules.iter().map(String::as_str))
    {
        keyed.extend_from_slice(part.as_bytes());
        keyed.push(0); // part separator
    }
    svserve::persist::fnv64(&keyed)
}

fn main() {
    let dir = svserve::env_cache_dir().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("assertsolver-warm-start-{}", std::process::id()))
    });
    let expect_warm = std::env::args().any(|arg| arg == "--expect-warm");
    println!(
        "cache dir: {} ({})",
        dir.display(),
        if expect_warm {
            "expecting a warm start"
        } else {
            "cold start allowed"
        }
    );

    let cases: Vec<_> = assertsolver::human_crafted_cases()
        .into_iter()
        .take(4)
        .collect();
    let config = EvalConfig {
        workers: 2,
        verify_workers: 2,
        cache_dir: Some(dir.display().to_string()),
        ..EvalConfig::quick(17)
    };
    let model = AssertSolverModel::base(11);

    let verifier = EvalVerifier::start(&config);
    let evaluation = evaluate_model_with(&model, &cases, &config, &verifier);
    let metrics = verifier.metrics();
    verifier.shutdown(); // flushes the verdict snapshot
    println!("{}", metrics.render());

    let json = serde_json::to_string(&evaluation).expect("evaluation serialises");
    let modules: Vec<String> = cases.iter().map(|c| c.module_name.clone()).collect();
    let reference = dir.join(format!(
        "eval-reference-{:016x}.json",
        protocol_hash(&config, &model.identity(), &modules)
    ));
    match std::fs::read_to_string(&reference) {
        Ok(previous) => {
            assert_eq!(
                previous, json,
                "warm-start evaluation differs from the recorded cold-start evaluation"
            );
            println!(
                "evaluation matches the recorded reference byte for byte ({} cases)",
                evaluation.results.len()
            );
        }
        Err(_) => {
            std::fs::write(&reference, &json).expect("write evaluation reference");
            println!(
                "recorded reference evaluation ({} cases)",
                evaluation.results.len()
            );
        }
    }

    if expect_warm {
        assert!(
            metrics.snapshot_loaded_entries > 0,
            "warm run must preload the verdict snapshot"
        );
        assert!(
            metrics.cache_hits > 0 && metrics.cache_hit_rate > 0.0,
            "warm run must report a nonzero verdict-cache hit rate"
        );
        assert!(
            metrics.warm_hits > 0 && metrics.warm_hit_rate > 0.0,
            "warm hits must be attributed to the snapshot"
        );
        println!(
            "warm start verified: {} preloaded verdicts, {:.1}% warm hit rate",
            metrics.snapshot_loaded_entries,
            metrics.warm_hit_rate * 100.0
        );
    }
    println!("pass@1 = {:.3}", evaluation.passk().pass1);
}
