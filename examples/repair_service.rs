//! Serving a 100-case mixed workload through the `svserve` repair service.
//!
//! Demonstrates the three serving-layer guarantees:
//!
//! 1. **Throughput with metrics** — a mixed workload (machine-generated pipeline
//!    cases, human-crafted cases, and duplicate resubmissions) runs through the
//!    sharded worker pool, and the run ends with a [`svserve::ServiceMetrics`]
//!    snapshot;
//! 2. **Determinism** — the same workload and seed produce byte-identical responses
//!    with 1 worker and with 4 workers;
//! 3. **Caching** — resubmitting an already-served case is answered from the
//!    content-addressed cache without invoking the model again;
//! 4. **Verification offload** — candidate verdicts run on a second sharded pool
//!    (`svserve::verify`), pipelined with sampling inside `evaluate_model`, with a
//!    content-addressed verdict cache that survives across evaluation runs;
//! 5. **Cache persistence** — both caches spill to versioned on-disk snapshots and
//!    preload at pool start, so a rebuilt service warm-starts from a previous one's
//!    work (see also `examples/warm_start.rs` for the cross-process variant).
//!
//! Run with `cargo run --release --example repair_service`.

use assertsolver::{evaluate_model_with, EvalConfig, EvalVerifier};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use svmodel::{AssertSolverModel, CaseInput, RepairModel, Response};
use svserve::{RepairRequest, RepairService, ServiceConfig};

/// Wraps a model and counts invocations so cache hits are observable.
struct Counting<M> {
    inner: M,
    calls: AtomicUsize,
}

impl<M: RepairModel> RepairModel for Counting<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn solve(
        &self,
        case: &CaseInput,
        samples: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Response> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        self.inner.solve(case, samples, temperature, seed)
    }
}

/// A mixed workload of at least 100 requests: machine-generated bugs, human-crafted
/// cases, and enough duplicates to exercise the cache.
fn build_workload() -> Vec<RepairRequest> {
    let pipeline = svdata::run_pipeline(&svdata::PipelineConfig {
        corpus: svgen::CorpusConfig {
            golden_designs: 16,
            ..svgen::CorpusConfig::default()
        },
        bugs_per_design: 3,
        ..svdata::PipelineConfig::tiny(31)
    });
    let mut cases: Vec<CaseInput> = pipeline
        .datasets
        .sva_bug
        .iter()
        .map(CaseInput::from_entry)
        .collect();
    cases.extend(
        assertsolver::human_crafted_cases()
            .iter()
            .map(CaseInput::from_entry),
    );
    assert!(!cases.is_empty());
    (0..120)
        .map(|i| RepairRequest::new(cases[i % cases.len()].clone(), 4, 0.25))
        .collect()
}

fn serve(workload: Vec<RepairRequest>, workers: usize, seed: u64) -> Vec<Arc<Vec<Response>>> {
    let model = Arc::new(Counting {
        inner: AssertSolverModel::base(11),
        calls: AtomicUsize::new(0),
    });
    let service = RepairService::start(
        Arc::clone(&model),
        ServiceConfig::default()
            .with_workers(workers)
            .with_seed(seed),
    );
    let outcomes = service.solve_all(workload);
    let metrics = service.metrics();
    println!(
        "\n=== {workers} worker(s): {} requests, {} model invocations ===",
        outcomes.len(),
        model.calls.load(Ordering::SeqCst),
    );
    println!("{}", metrics.render());
    service.shutdown();
    outcomes.into_iter().map(|o| o.responses).collect()
}

fn main() {
    let workload = build_workload();
    let distinct = workload
        .iter()
        .map(RepairRequest::key)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    println!(
        "workload: {} requests over {distinct} distinct cases (machine + human mixed)",
        workload.len(),
    );

    // 1 + 2: serve at two worker counts, compare byte-for-byte.
    let seed = 0x00A5_5E27;
    let single = serve(workload.clone(), 1, seed);
    let quad = serve(workload.clone(), 4, seed);
    let single_bytes: Vec<String> = single
        .iter()
        .flat_map(|r| r.iter())
        .map(Response::to_json)
        .collect();
    let quad_bytes: Vec<String> = quad
        .iter()
        .flat_map(|r| r.iter())
        .map(Response::to_json)
        .collect();
    assert_eq!(
        single_bytes, quad_bytes,
        "determinism violated: 1-worker and 4-worker responses differ"
    );
    println!(
        "\n1-worker and 4-worker responses are byte-identical ({} responses)",
        single_bytes.len()
    );

    // 3: a repeated submission must be a cache hit that never reaches the model.
    let model = Arc::new(Counting {
        inner: AssertSolverModel::base(11),
        calls: AtomicUsize::new(0),
    });
    let service = RepairService::start(Arc::clone(&model), ServiceConfig::default());
    let request = workload[0].clone();
    let first = service.submit(request.clone()).unwrap().wait();
    let calls_after_first = model.calls.load(Ordering::SeqCst);
    let second = service.submit(request).unwrap().wait();
    assert!(!first.from_cache && second.from_cache);
    assert_eq!(first.responses, second.responses);
    assert_eq!(
        model.calls.load(Ordering::SeqCst),
        calls_after_first,
        "cache hit re-invoked the model"
    );
    println!(
        "repeat submission served from cache (model invoked {calls_after_first} time(s) total)"
    );
    let final_metrics = service.shutdown();
    assert_eq!(final_metrics.cache_hits, 1);

    // 4: verification offload — verdicts run on their own pool, pipelined with
    // sampling, deterministic at any worker count, and cached across runs.
    let cases: Vec<_> = assertsolver::human_crafted_cases()
        .into_iter()
        .take(4)
        .collect();
    let single = EvalConfig {
        workers: 1,
        verify_workers: 1,
        ..EvalConfig::quick(2)
    };
    let parallel = EvalConfig {
        verify_workers: 4,
        ..single.clone()
    };
    let model = AssertSolverModel::base(11);
    let verifier = EvalVerifier::start(&parallel);
    let cold = evaluate_model_with(&model, &cases, &parallel, &verifier);
    let warm = evaluate_model_with(&model, &cases, &parallel, &verifier);
    assert_eq!(
        cold, warm,
        "a pre-warmed verdict cache changed evaluation results"
    );
    let verify_metrics = verifier.shutdown();
    assert!(verify_metrics.cache_hits > 0, "warm run must hit the cache");
    let one_worker = assertsolver::evaluate_model(&model, &cases, &single);
    assert_eq!(
        one_worker, cold,
        "verify worker count changed evaluation results"
    );
    println!(
        "\nverification offload: {} verdict jobs over {} cases, warm rerun identical \
         ({} cache hits); 1-worker and 4-worker evaluations identical\n",
        verify_metrics.completed,
        cases.len(),
        verify_metrics.cache_hits,
    );
    // The verification stage's own snapshot.  (An operator running both pools over
    // one workload would attach it to the repair snapshot with
    // `ServiceMetrics::with_verify` for a combined view; the pools in this example
    // served different workloads, so they are rendered separately.)
    println!("{}", verify_metrics.render());

    // 5: cache persistence — a rebuilt service preloads its predecessor's snapshot
    // and serves the whole workload without touching the model.
    let snapshot_dir =
        std::env::temp_dir().join(format!("repair-service-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let persist = svserve::PersistSpec::new(
        snapshot_dir.join("responses.json"),
        &seed.to_le_bytes(),
        "AssertSolver (base)",
    );
    let persistent_config = ServiceConfig::default()
        .with_workers(2)
        .with_seed(seed)
        .with_persist(persist);
    let first_model = Arc::new(Counting {
        inner: AssertSolverModel::base(11),
        calls: AtomicUsize::new(0),
    });
    let first = RepairService::start(Arc::clone(&first_model), persistent_config.clone());
    let first_responses: Vec<_> = first
        .solve_all(workload.clone())
        .into_iter()
        .map(|o| o.responses)
        .collect();
    first.shutdown(); // flushes the snapshot
    let second_model = Arc::new(Counting {
        inner: AssertSolverModel::base(11),
        calls: AtomicUsize::new(0),
    });
    let second = RepairService::start(Arc::clone(&second_model), persistent_config);
    let second_responses: Vec<_> = second
        .solve_all(workload)
        .into_iter()
        .map(|o| o.responses)
        .collect();
    let warm_metrics = second.shutdown();
    assert_eq!(first_responses, second_responses);
    assert_eq!(
        second_model.calls.load(Ordering::SeqCst),
        0,
        "snapshot warm start must not re-invoke the model"
    );
    println!(
        "\ncache persistence: rebuilt service preloaded {} entries and served {} requests \
         with zero model calls ({:.1}% warm hit rate)",
        warm_metrics.snapshot_loaded_entries,
        warm_metrics.completed,
        warm_metrics.warm_hit_rate * 100.0,
    );
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    println!("\nall service guarantees verified");
}
