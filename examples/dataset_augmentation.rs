//! Run the three-stage data-augmentation pipeline and print Table-II style statistics.
//!
//! Run with `cargo run --release --example dataset_augmentation`.

use svdata::{distribution, run_pipeline, split_by_module, PipelineConfig};

fn main() {
    let config = PipelineConfig::tiny(42);
    let output = run_pipeline(&config);
    println!(
        "Stage 1: {} accepted designs, {} duplicates removed, {} trivial, {} failed compile",
        output.stage1.accepted.len(),
        output.stage1.duplicates_removed,
        output.stage1.trivial_rejected,
        output.stage1.compile_rejected
    );
    println!("Stage 2: {} SVA-Bug cases, {} Verilog-Bug entries, {} invalid-SVA designs, {} discarded mutants",
        output.datasets.sva_bug.len(),
        output.datasets.verilog_bug.len(),
        output.invalid_sva_designs,
        output.discarded_mutants);
    println!(
        "Stage 3: {:.1}% of generated CoTs passed validation (paper reports 74.55%)",
        output.cot_valid_fraction * 100.0
    );

    let split = split_by_module(output.datasets.sva_bug.clone(), config.train_fraction, 1);
    let table = assertsolver::render_distribution(
        "Table II (this run)",
        &[
            ("SVA-Bug", distribution(&split.train)),
            ("SVA-Eval", distribution(&split.eval)),
        ],
    );
    println!("\n{table}");
}
