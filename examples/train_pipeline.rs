//! Full training flow (PT -> SFT -> DPO) and a Table-III style comparison of the
//! three checkpoints on the held-out benchmark.
//!
//! Run with `cargo run --release --example train_pipeline`.

use assertsolver::{evaluate_model, render_passk_table, train, EvalConfig, TrainConfig};
use svmodel::RepairModel;

fn main() {
    let artifacts = train(&TrainConfig::quick(11));
    println!(
        "trained on {} cases, evaluating on {} machine + {} human cases; {} DPO preference pairs",
        artifacts.split.train.len(),
        artifacts.sva_eval.machine.len(),
        artifacts.sva_eval.human.len(),
        artifacts.preference_pairs
    );
    let benchmark = artifacts.sva_eval.all();
    let config = EvalConfig::quick(3);
    let rows: Vec<(String, assertsolver::PassK)> =
        [&artifacts.base, &artifacts.sft, &artifacts.assert_solver]
            .into_iter()
            .map(|model| {
                let eval = evaluate_model(model, &benchmark, &config);
                (model.name().to_string(), eval.passk())
            })
            .collect();
    println!("\n{}", render_passk_table("Table III (this run)", &rows));
}
